"""Unit tests for mergeable quantile sketches and burn-rate counters."""

import json
import math
import pickle
import random

import numpy as np
import pytest

from repro.experiments.parallel import pmap
from repro.obs.sketch import (
    BurnRateTracker,
    QuantileSketch,
    merge_sketches,
)

QS = (0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0)


def sample_sets():
    rng = random.Random(1234)
    return {
        "uniform": [rng.uniform(0.001, 10.0) for _ in range(2000)],
        "lognormal": [
            math.exp(rng.gauss(0.0, 2.0)) for _ in range(2000)
        ],
        "wide": [10.0 ** rng.uniform(-6, 4) for _ in range(500)],
        "with_zeros_negatives": (
            [0.0] * 50
            + [-rng.uniform(0.01, 5.0) for _ in range(200)]
            + [rng.uniform(0.01, 5.0) for _ in range(200)]
        ),
        "tiny": [0.5],
        "pair": [1.0, 2.0],
    }


class TestAccuracy:
    @pytest.mark.parametrize("name", sorted(sample_sets()))
    def test_within_relative_error_of_numpy_lower(self, name):
        values = sample_sets()[name]
        accuracy = 0.01
        sketch = QuantileSketch(relative_accuracy=accuracy)
        sketch.extend(values)
        for q in QS:
            exact = float(np.quantile(values, q, method="lower"))
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= accuracy * abs(exact) + 1e-12, (
                f"{name} q={q}: estimate={estimate} exact={exact}"
            )

    def test_min_max_exact(self):
        values = sample_sets()["lognormal"]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        # The extreme quantiles stay inside the exact [min, max] range
        # and within the relative-error band of the true extremes.
        assert min(values) <= sketch.quantile(0.0) <= max(values)
        assert min(values) <= sketch.quantile(1.0) <= max(values)
        assert sketch.quantile(0.0) == pytest.approx(
            min(values), rel=sketch.relative_accuracy
        )
        assert sketch.quantile(1.0) == pytest.approx(
            max(values), rel=sketch.relative_accuracy
        )

    def test_empty_is_nan(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.quantile(0.5))
        assert sketch.count == 0

    def test_rejects_non_finite(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(float("nan"))
        with pytest.raises(ValueError):
            sketch.add(float("inf"))

    def test_rejects_bad_accuracy_and_quantile(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.add(1.0, count=0)


class TestMerge:
    def test_merge_equals_union(self):
        values = sample_sets()["lognormal"]
        whole = QuantileSketch()
        whole.extend(values)
        left, right = QuantileSketch(), QuantileSketch()
        left.extend(values[:700])
        right.extend(values[700:])
        assert left.merge(right) == whole

    def test_merge_associative_any_grouping(self):
        values = sample_sets()["uniform"]
        chunks = [values[i::5] for i in range(5)]
        parts = []
        for chunk in chunks:
            sketch = QuantileSketch()
            sketch.extend(chunk)
            parts.append(sketch)
        # Left fold vs pairwise-tree fold vs reversed order.
        left_fold = merge_sketches(parts)
        tree = merge_sketches(
            [
                merge_sketches(parts[:2]),
                merge_sketches(parts[2:4]),
                parts[4],
            ]
        )
        reverse = merge_sketches(list(reversed(parts)))
        assert left_fold == tree == reverse
        d = json.dumps(left_fold.to_dict(), sort_keys=True)
        assert d == json.dumps(tree.to_dict(), sort_keys=True)
        assert d == json.dumps(reverse.to_dict(), sort_keys=True)

    def test_merge_accepts_dicts_and_none(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.extend([1.0, 2.0])
        b.extend([3.0])
        merged = merge_sketches([None, a.to_dict(), None, b])
        assert merged.count == 3

    def test_merge_all_empty(self):
        merged = merge_sketches([None, None])
        assert merged.count == 0

    def test_merge_rejects_mismatched_accuracy(self):
        a = QuantileSketch(relative_accuracy=0.01)
        b = QuantileSketch(relative_accuracy=0.02)
        with pytest.raises(ValueError):
            a.merge(b)


class TestSerialization:
    def test_round_trip(self):
        sketch = QuantileSketch()
        sketch.extend(sample_sets()["with_zeros_negatives"])
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone == sketch
        assert clone.quantile(0.5) == sketch.quantile(0.5)

    def test_byte_identical_serialization(self):
        values = sample_sets()["uniform"]
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(values)
        b.extend(list(reversed(values)))  # insertion order must not matter
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_pickle_goes_through_dict_form(self):
        sketch = QuantileSketch()
        sketch.extend([0.1, 1.0, 10.0])
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone == sketch

    def test_from_dict_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            QuantileSketch.from_dict({"kind": "histogram"})


def _sketch_worker(chunk):
    """Module-level pmap worker: sketch one chunk of samples."""
    sketch = QuantileSketch()
    sketch.extend(chunk)
    return sketch.to_dict()


class TestPmapDeterminism:
    def test_serial_vs_parallel_merge_byte_identical(self):
        values = sample_sets()["lognormal"]
        chunks = [values[i::4] for i in range(4)]
        serial = pmap(_sketch_worker, chunks, jobs=1)
        parallel = pmap(_sketch_worker, chunks, jobs=2)
        merged_serial = merge_sketches(serial)
        merged_parallel = merge_sketches(parallel)
        assert json.dumps(
            merged_serial.to_dict(), sort_keys=True
        ) == json.dumps(merged_parallel.to_dict(), sort_keys=True)


class TestBurnRate:
    def test_windowing_and_rates(self):
        tracker = BurnRateTracker(window=10.0, slo_budget=0.1)
        for ts in (0.0, 1.0, 9.999):  # window [0, 10)
            tracker.observe(ts, violated=False)
        tracker.observe(10.0, violated=True)   # window [10, 20)
        tracker.observe(15.0, violated=False)
        rows = tracker.series()
        assert len(rows) == 2
        assert rows[0]["burn_rate"] == 0.0
        assert rows[1]["burn_rate"] == pytest.approx(0.5 / 0.1)
        assert tracker.max_burn_rate() == pytest.approx(5.0)
        assert tracker.total == 5
        assert tracker.violated == 1

    def test_gap_windows_filled(self):
        tracker = BurnRateTracker(window=1.0)
        tracker.observe(0.5, violated=False)
        tracker.observe(3.5, violated=True)
        rows = tracker.series()
        assert [r["total"] for r in rows] == [1, 0, 0, 1]
        assert rows[1]["burn_rate"] == 0.0

    def test_merge_matches_union(self):
        a = BurnRateTracker(window=5.0)
        b = BurnRateTracker(window=5.0)
        verdicts = [(0.1, True), (2.0, False), (7.0, True), (12.0, False)]
        whole = BurnRateTracker(window=5.0)
        for i, (ts, bad) in enumerate(verdicts):
            whole.observe(ts, bad)
            (a if i % 2 == 0 else b).observe(ts, bad)
        assert a.merge(b) == whole

    def test_merge_rejects_mismatched_config(self):
        with pytest.raises(ValueError):
            BurnRateTracker(window=5.0).merge(BurnRateTracker(window=10.0))

    def test_round_trip_and_pickle(self):
        tracker = BurnRateTracker(window=30.0, slo_budget=0.05)
        tracker.observe(12.0, True)
        tracker.observe(95.0, False)
        assert BurnRateTracker.from_dict(tracker.to_dict()) == tracker
        assert pickle.loads(pickle.dumps(tracker)) == tracker

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateTracker(window=0.0)
        with pytest.raises(ValueError):
            BurnRateTracker(slo_budget=0.0)
        tracker = BurnRateTracker()
        with pytest.raises(ValueError):
            tracker.observe(float("nan"), False)
        assert tracker.max_burn_rate() == 0.0
        assert tracker.series() == []
