"""Property-based tests on policy invariants: relegation fairness,
heap ordering under re-keying, and chunker safety."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.chunking import DynamicChunker
from repro.core.predictor import OracleBatchPredictor
from repro.core.qos import DEFAULT_TIERS
from repro.core.relegation import RelegationPolicy, ViolationChecker
from repro.core.request import Request
from repro.experiments.configs import get_execution_model
from repro.schedulers.classic import EDFScheduler

EM = get_execution_model("llama3-8b")

queued_request = st.builds(
    Request,
    request_id=st.integers(0, 10_000),
    arrival_time=st.floats(0.0, 100.0, allow_nan=False),
    prompt_tokens=st.integers(1, 10_000),
    decode_tokens=st.integers(1, 500),
    qos=st.sampled_from(DEFAULT_TIERS),
    important=st.booleans(),
)


def fresh_ids(requests):
    for i, r in enumerate(requests):
        r.request_id = i
    return requests


@given(queue=st.lists(queued_request, max_size=30),
       now=st.floats(0.0, 200.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_relegation_plan_invariants(queue, now):
    queue = fresh_ids(queue)
    checker = ViolationChecker(
        seconds_per_prefill_token=1e-4,
        seconds_per_decode_token=0.03,
    )
    policy = RelegationPolicy(checker, use_hints=True)
    # Priority order: EDF-ish by governing deadline.
    queue.sort(key=lambda r: r.first_token_deadline)
    plan = policy.plan(queue, now)

    ids = [r.request_id for r in plan.to_relegate]
    # No duplicates, all members of the queue.
    assert len(ids) == len(set(ids))
    assert set(ids) <= {r.request_id for r in queue}
    # An important request is only relegated if its own deadline is
    # unreachable even with immediate service.
    for victim in plan.to_relegate:
        if victim.important:
            assert checker.deadline_slack(victim, now) < 0

    # Idempotence-ish: marking the victims and re-planning the
    # remaining active queue relegates no *important* survivors whose
    # deadline is reachable.
    survivors = [r for r in queue if r.request_id not in set(ids)]
    plan2 = policy.plan(survivors, now)
    for victim in plan2.to_relegate:
        if victim.important:
            assert checker.deadline_slack(victim, now) < 0


@given(
    entries=st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False),
                  st.integers(1, 5000)),
        min_size=1, max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_heap_pops_in_priority_order(entries):
    """The lazy heap yields live entries in (key, insertion) order."""
    scheduler = EDFScheduler()
    requests = []
    for i, (arrival, prompt) in enumerate(entries):
        r = Request(i, arrival, prompt, 1, DEFAULT_TIERS[0])
        requests.append(r)
        scheduler.enqueue(r, arrival)
    popped = scheduler._pop_candidates()
    keys = [scheduler.priority(r, 0.0) for r in popped]
    assert keys == sorted(keys)
    assert len(popped) == min(len(requests), scheduler.MAX_EXAMINED)


@given(
    num_decodes=st.integers(0, 64),
    context=st.integers(1, 8192),
    now=st.floats(0.0, 50.0, allow_nan=False),
    arrival=st.floats(0.0, 50.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_chunker_budget_always_in_bounds(num_decodes, context, now,
                                         arrival):
    chunker = DynamicChunker(OracleBatchPredictor(EM))
    decodes = []
    for i in range(num_decodes):
        r = Request(i, arrival, context, 100, DEFAULT_TIERS[i % 3])
        r.prefill_done = context
        r.decoded = 1
        decodes.append(r)
    decision = chunker.prefill_budget(
        max(now, arrival), decodes, prefill_context_before=context
    )
    assert chunker.min_chunk <= decision.prefill_budget <= chunker.max_chunk
    assert decision.latency_budget > 0
