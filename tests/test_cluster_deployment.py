"""Unit tests for cluster deployments and load balancing."""

import pytest

from repro.cluster.deployment import (
    ClusterDeployment,
    SiloedDeployment,
    SiloSpec,
)
from repro.experiments.runner import scheduler_factory
from repro.workload import PoissonArrivals, TierAssigner, TraceBuilder
from repro.workload.datasets import AZURE_CODE
from tests.conftest import make_request


def small_trace(n=60, qps=3.0, seed=3):
    return TraceBuilder(
        AZURE_CODE, arrivals=PoissonArrivals(qps),
        tier_assigner=TierAssigner(), seed=seed,
    ).build(n)


class TestClusterDeployment:
    def test_round_robin_spreads_requests(self, execution_model):
        cluster = ClusterDeployment(
            execution_model, scheduler_factory("fcfs", execution_model),
            num_replicas=3,
        )
        for i in range(9):
            cluster.submit(make_request(request_id=i))
        counts = [len(r.submitted) for r in cluster.replicas]
        assert counts == [3, 3, 3]

    def test_all_requests_complete(self, execution_model):
        cluster = ClusterDeployment(
            execution_model, scheduler_factory("fcfs", execution_model),
            num_replicas=2,
        )
        trace = small_trace()
        cluster.submit_trace(trace)
        cluster.run()
        assert all(r.is_finished for r in cluster.all_requests())
        assert len(cluster.all_requests()) == len(trace)

    def test_gpus_used_counts_tp(self):
        from repro.experiments.configs import get_execution_model

        qwen = get_execution_model("qwen-7b")  # TP2
        cluster = ClusterDeployment(
            qwen, scheduler_factory("fcfs", qwen), num_replicas=3
        )
        assert cluster.gpus_used == 6

    def test_more_replicas_lower_latency(self, execution_model):
        trace = small_trace(n=80, qps=6.0)

        def p99(replicas):
            cluster = ClusterDeployment(
                execution_model,
                scheduler_factory("fcfs", execution_model),
                num_replicas=replicas,
            )
            cluster.submit_trace(trace.fresh_copy())
            cluster.run()
            return cluster.summarize().overall_percentiles[0.99]

        assert p99(4) <= p99(1)

    def test_validation(self, execution_model):
        with pytest.raises(ValueError):
            ClusterDeployment(
                execution_model,
                scheduler_factory("fcfs", execution_model),
                num_replicas=0,
            )


class TestSiloedDeployment:
    def make_silo(self, execution_model):
        return SiloedDeployment(
            execution_model,
            silos=[
                SiloSpec(("Q1",), 1, scheduler_factory(
                    "fcfs", execution_model, chunk_size=256)),
                SiloSpec(("Q2", "Q3"), 1, scheduler_factory(
                    "fcfs", execution_model, chunk_size=2048)),
            ],
        )

    def test_routes_by_tier(self, execution_model):
        deployment = self.make_silo(execution_model)
        trace = small_trace(n=60)
        deployment.submit_trace(trace)
        q1_pool, batch_pool = deployment.pools
        for replica in q1_pool.replicas:
            assert all(r.qos.name == "Q1" for r in replica.submitted)
        for replica in batch_pool.replicas:
            assert all(r.qos.name in ("Q2", "Q3")
                       for r in replica.submitted)

    def test_completes_and_summarizes(self, execution_model):
        deployment = self.make_silo(execution_model)
        trace = small_trace(n=50)
        deployment.submit_trace(trace)
        deployment.run()
        summary = deployment.summarize()
        assert summary.finished == 50

    def test_unrouted_tier_raises(self, execution_model):
        deployment = SiloedDeployment(
            execution_model,
            silos=[SiloSpec(("Q1",), 1,
                            scheduler_factory("fcfs", execution_model))],
        )
        from tests.conftest import Q2
        with pytest.raises(KeyError):
            deployment.submit(make_request(qos=Q2))

    def test_duplicate_tier_rejected(self, execution_model):
        with pytest.raises(ValueError):
            SiloedDeployment(
                execution_model,
                silos=[
                    SiloSpec(("Q1",), 1,
                             scheduler_factory("fcfs", execution_model)),
                    SiloSpec(("Q1",), 1,
                             scheduler_factory("fcfs", execution_model)),
                ],
            )

    def test_gpus_used_sums_pools(self, execution_model):
        deployment = self.make_silo(execution_model)
        assert deployment.gpus_used == 2

    def test_empty_silos_rejected(self, execution_model):
        with pytest.raises(ValueError):
            SiloedDeployment(execution_model, silos=[])
