"""Bit-identical parity: the array engine vs the reference engine.

:class:`~repro.engine.arrays.ArrayReplicaEngine` is a pure performance
play — same decisions, same floats, same event stream as the
object-based :class:`~repro.engine.replica.ReplicaEngine` reference
path.  These tests pin that claim at every layer the array engine
reimplements:

* fast-mode run summaries (no observer — the vectorized kernels,
  decode-stretch fast-forward and version-stamped advance paths);
* traced runs (byte-identical event streams, rendered metric
  registries and per-request audit attribution);
* the fault path (crash + slowdown plan on a resilient pool);
* a seeded 500-request randomized property run (completion order and
  per-request latency attribution totals);
* the block ledger's math vs :class:`KVCacheManager` at block sizes
  1 and 16 and off-by-one token counts;
* the flat batch-time kernels vs :meth:`ExecutionModel.batch_time`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.request import Request
from repro.engine import ArrayReplicaEngine, ReplicaConfig, ReplicaEngine
from repro.engine.arrays import ArrayKVLedger, _RowStore
from repro.engine.kvcache import KVCacheManager
from repro.experiments.runner import build_trace, make_scheduler
from repro.obs.audit import audit_events
from repro.obs.observer import TracingObserver
from repro.obs.trace import ListSink, TraceRecorder
from repro.perfmodel.execution import BatchShape, PrefillChunk
from repro.simcore import Simulator
from repro.workload.datasets import AZURE_CODE, AZURE_CONV

ENGINES = (ReplicaEngine, ArrayReplicaEngine)


def clone(requests):
    """Fresh request objects so the two runs share no mutable state."""
    return [
        Request(
            request_id=r.request_id,
            arrival_time=r.arrival_time,
            prompt_tokens=r.prompt_tokens,
            decode_tokens=r.decode_tokens,
            qos=r.qos,
            app_id=r.app_id,
            important=r.important,
        )
        for r in requests
    ]


def fingerprint(engine, requests):
    """Every externally visible float and counter of a finished run."""
    return [
        (
            r.request_id,
            r.decoded,
            r.prefill_done,
            r.first_token_time,
            r.last_token_time,
            r.completion_time,
            r.scheduled_first_time,
            r.max_tbt,
            r.tbt_gap_misses,
            r.tbt_deadline_misses,
            r.cancelled,
            r.evictions,
        )
        for r in requests
    ] + [
        (
            "engine",
            engine.iterations_run,
            engine.busy_time,
            engine.decode_evictions,
            engine.kv_cache.used_blocks,
            engine.kv_cache.high_water_blocks,
            [q.request_id for q in engine.completed],
            dict(engine.chunk_tokens_hist),
        )
    ]


def run_fast(engine_cls, execution_model, requests, scheduler):
    sim = Simulator()
    engine = engine_cls(
        sim,
        execution_model,
        make_scheduler(scheduler, execution_model),
        ReplicaConfig(),
    )
    for r in requests:
        engine.submit(r)
    sim.run(max_events=5_000_000)
    return fingerprint(engine, requests)


def run_traced(engine_cls, execution_model, requests, scheduler):
    sim = Simulator()
    sink = ListSink()
    observer = TracingObserver(recorder=TraceRecorder([sink]))
    engine = engine_cls(
        sim,
        execution_model,
        make_scheduler(scheduler, execution_model),
        ReplicaConfig(),
        observer=observer,
    )
    for r in requests:
        engine.submit(r)
    sim.run(max_events=5_000_000)
    return sink.events, observer.registry.to_prometheus_text()


class TestRunParity:
    """Fast-mode fingerprints across schedulers, datasets and loads."""

    @pytest.mark.parametrize("scheduler", ["qoserve", "medha"])
    @pytest.mark.parametrize(
        "dataset", [AZURE_CONV, AZURE_CODE], ids=["conv", "code"]
    )
    def test_fingerprint_identical(
        self, execution_model, dataset, scheduler
    ):
        trace = build_trace(dataset, qps=1.0, num_requests=80, seed=7)
        results = []
        for engine_cls in ENGINES:
            requests = clone(trace.requests)
            for r in requests:
                r.arrival_time /= 6.0
            results.append(
                run_fast(engine_cls, execution_model, requests, scheduler)
            )
        assert results[0] == results[1]

    def test_heavy_load_exercises_vector_advance(self, execution_model):
        """Arrivals compressed 12x drive the decode batch past the
        small-batch threshold, so the slice-kernel advance path runs."""
        trace = build_trace(AZURE_CONV, qps=1.0, num_requests=120, seed=13)
        results = []
        for engine_cls in ENGINES:
            requests = clone(trace.requests)
            for r in requests:
                r.arrival_time /= 12.0
            results.append(
                run_fast(engine_cls, execution_model, requests, "qoserve")
            )
        assert results[0] == results[1]

    def test_stepped_run_until(self, execution_model):
        """Gateway-style incremental run(until=...) driving — the
        decode-stretch fast-forward must respect every run bound."""
        trace = build_trace(AZURE_CONV, qps=1.0, num_requests=60, seed=11)
        results = []
        for engine_cls in ENGINES:
            requests = clone(trace.requests)
            for r in requests:
                r.arrival_time /= 5.0
            sim = Simulator()
            engine = engine_cls(
                sim,
                execution_model,
                make_scheduler("qoserve", execution_model),
                ReplicaConfig(),
            )
            for r in requests:
                engine.submit(r)
            t = 0.0
            while True:
                t += 0.37
                sim.run(until=t)
                if not sim.pending_events and not engine.has_work():
                    break
                assert t < 1e5, "run did not drain"
            results.append(fingerprint(engine, requests))
        assert results[0] == results[1]


class TestTracedParity:
    """Byte-identical event streams, metrics and audit attribution."""

    @pytest.mark.parametrize(
        "dataset,scheduler",
        [(AZURE_CONV, "qoserve"), (AZURE_CODE, "medha")],
        ids=["conv-qoserve", "code-medha"],
    )
    def test_events_metrics_attribution(
        self, execution_model, dataset, scheduler
    ):
        trace = build_trace(dataset, qps=1.0, num_requests=60, seed=3)
        events, metrics = [], []
        for engine_cls in ENGINES:
            requests = clone(trace.requests)
            for r in requests:
                r.arrival_time /= 6.0
            ev, m = run_traced(
                engine_cls, execution_model, requests, scheduler
            )
            events.append(ev)
            metrics.append(m)
        assert events[0] == events[1]
        assert metrics[0] == metrics[1]
        assert (
            audit_events(events[0]).to_dict()
            == audit_events(events[1]).to_dict()
        )


class TestFaultParity:
    """Crash + slowdown plan on a resilient pool, both engine cores."""

    def test_resilient_cluster_identical(self, execution_model):
        from repro.cluster.resilient import ResilientClusterDeployment
        from repro.experiments.runner import scheduler_factory
        from repro.faults import FaultPlan, ReplicaCrash, ReplicaSlowdownFault
        from repro.metrics.export import summary_to_dict

        trace = build_trace(AZURE_CODE, qps=8.0, num_requests=100, seed=7)
        plan = FaultPlan(events=(
            ReplicaCrash(time=2.0, replica_id=0, recover_after=6.0),
            ReplicaSlowdownFault(
                time=1.0, replica_id=1, factor=1.7, duration=8.0
            ),
        ))
        summaries, prints = [], []
        for engine_cls in ENGINES:
            cluster = ResilientClusterDeployment(
                execution_model,
                scheduler_factory("qoserve", execution_model),
                num_replicas=2,
                fault_plan=plan,
                engine_cls=engine_cls,
            )
            requests = clone(trace.requests)
            for r in requests:
                cluster.submit(r)
            cluster.run(max_events=5_000_000)
            summaries.append(
                (summary_to_dict(cluster.summarize()), cluster.fault_stats())
            )
            prints.append(
                [
                    (
                        r.request_id,
                        r.decoded,
                        r.completion_time,
                        r.cancelled,
                        r.attempts,
                        r.evictions,
                    )
                    for r in requests
                ]
            )
        assert summaries[0] == summaries[1]
        assert prints[0] == prints[1]


class TestRandomizedProperty:
    """Seeded 500-request randomized run: completion order and
    per-request latency attribution totals must agree exactly."""

    def test_500_requests(self, execution_model):
        rng = np.random.default_rng(0xA77A)
        scale = float(rng.uniform(6.0, 10.0))
        low_priority = float(rng.uniform(0.1, 0.4))
        trace = build_trace(
            AZURE_CONV,
            qps=1.0,
            num_requests=500,
            seed=int(rng.integers(1, 1 << 30)),
            low_priority_fraction=low_priority,
        )
        orders, attributions = [], []
        for engine_cls in ENGINES:
            requests = clone(trace.requests)
            for r in requests:
                r.arrival_time /= scale
            sim = Simulator()
            sink = ListSink()
            observer = TracingObserver(recorder=TraceRecorder([sink]))
            engine = engine_cls(
                sim,
                execution_model,
                make_scheduler("qoserve", execution_model),
                ReplicaConfig(),
                observer=observer,
            )
            for r in requests:
                engine.submit(r)
            sim.run(max_events=10_000_000)
            orders.append([r.request_id for r in engine.completed])
            report = audit_events(sink.events)
            attributions.append(report.to_dict())
        assert len(orders[0]) == 500
        assert orders[0] == orders[1]
        assert attributions[0] == attributions[1]


class TestLedgerBlockMath:
    """ArrayKVLedger vs KVCacheManager, op for op."""

    @pytest.mark.parametrize("block_size", [1, 16])
    def test_randomized_op_stream(self, block_size):
        rng = np.random.default_rng(block_size)
        capacity = 64 * block_size
        reference = KVCacheManager(capacity, block_size=block_size)
        ledger = ArrayKVLedger(capacity, block_size, _RowStore())
        live: list[int] = []
        next_id = 0
        for _ in range(600):
            op = rng.random()
            if op < 0.55 or not live:
                # Off-by-one-heavy growth sizes straddle block edges.
                extra = int(
                    rng.choice(
                        [
                            0, 1, block_size - 1, block_size,
                            block_size + 1, 2 * block_size - 1, 37,
                        ]
                    )
                )
                rid = (
                    next_id
                    if rng.random() < 0.4
                    else int(rng.choice(live + [next_id]))
                )
                if rid == next_id:
                    next_id += 1
                assert reference.blocks_needed(
                    rid, extra
                ) == ledger.blocks_needed(rid, extra)
                can = reference.can_grow(rid, extra)
                assert can == ledger.can_grow(rid, extra)
                if can:
                    reference.grow(rid, extra)
                    ledger.grow(rid, extra)
                    if rid not in live:
                        live.append(rid)
                else:
                    with pytest.raises(MemoryError):
                        reference.grow(rid, extra)
                    with pytest.raises(MemoryError):
                        ledger.grow(rid, extra)
            else:
                rid = int(rng.choice(live))
                live.remove(rid)
                assert reference.release(rid) == ledger.release(rid)
            assert reference.used_blocks == ledger.used_blocks
            assert reference.free_blocks == ledger.free_blocks
            assert reference.used_tokens == ledger.used_tokens
            assert reference.holders() == ledger.holders()
            assert (
                reference.high_water_blocks == ledger.high_water_blocks
            )
        for rid in list(live):
            assert reference.holding(rid) == ledger.holding(rid)

    def test_error_messages_match(self):
        reference = KVCacheManager(160, block_size=16)
        ledger = ArrayKVLedger(160, 16, _RowStore())
        for kv in (reference, ledger):
            with pytest.raises(ValueError):
                kv.grow(1, -1)
        reference.grow(1, 160)
        ledger.grow(1, 160)
        with pytest.raises(MemoryError) as ref_err:
            reference.grow(2, 16)
        with pytest.raises(MemoryError) as arr_err:
            ledger.grow(2, 16)
        assert str(ref_err.value) == str(arr_err.value)


class TestFlatBatchTime:
    """The flat kernels reproduce batch_time bit for bit."""

    def test_batch_time_flat_matches(self, execution_model):
        rng = np.random.default_rng(99)
        for _ in range(200):
            chunks = [
                (int(rng.integers(1, 512)), int(rng.integers(0, 4096)))
                for _ in range(int(rng.integers(0, 4)))
            ]
            num_decodes = int(rng.integers(0, 64))
            if not chunks and num_decodes == 0:
                num_decodes = 1
            dct = (
                int(rng.integers(num_decodes, num_decodes * 4096))
                if num_decodes
                else 0
            )
            shape = BatchShape(
                prefill_chunks=[
                    PrefillChunk(tokens=t, context_before=c)
                    for t, c in chunks
                ],
                num_decodes=num_decodes,
                decode_context_total=dct,
            )
            assert execution_model.batch_time(
                shape
            ) == execution_model.batch_time_flat(chunks, num_decodes, dct)

    def test_decode_batch_times_flat_matches(self, execution_model):
        rng = np.random.default_rng(7)
        for num_decodes in (1, 3, 48):
            totals = rng.integers(
                num_decodes, num_decodes * 2048, size=40
            ).astype(np.int64)
            flat = execution_model.decode_batch_times_flat(
                num_decodes, totals
            )
            for i, dct in enumerate(totals):
                shape = BatchShape(
                    num_decodes=num_decodes,
                    decode_context_total=int(dct),
                )
                assert flat[i] == execution_model.batch_time(shape)


class TestEngineSwitch:
    """ServeConfig/Session threading of the engine choice."""

    def test_resolve(self):
        from repro.api import resolve_engine_cls

        assert resolve_engine_cls("objects") is ReplicaEngine
        assert resolve_engine_cls("arrays") is ArrayReplicaEngine
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine_cls("turbo")

    def test_serve_config_validation(self):
        from repro.api import ServeConfig

        with pytest.raises(ValueError, match="unknown engine"):
            ServeConfig(engine="turbo")

    def test_session_builds_chosen_engine(self):
        from repro.api import ServeConfig, Session

        single = Session(ServeConfig(engine="arrays"))
        assert type(single.engine) is ArrayReplicaEngine
        pool = Session(ServeConfig(engine="arrays", num_replicas=3))
        assert all(
            type(e) is ArrayReplicaEngine for e in pool.engines
        )
        default = Session(ServeConfig())
        assert type(default.engine) is ReplicaEngine

    def test_session_summary_parity(self):
        import json

        from repro.api import ServeConfig, Session, build_trace
        from repro.metrics.export import summary_to_dict

        rendered = []
        for engine in ("arrays", "objects"):
            session = Session(
                ServeConfig(
                    engine=engine, scheduler="qoserve", num_replicas=2
                )
            )
            trace = build_trace(
                "AzConv", qps=1.0, num_requests=40, seed=7
            ).scaled_arrivals(3.0)
            for r in trace:
                session.submit(r)
            session.advance()
            rendered.append(
                json.dumps(
                    summary_to_dict(session.summary()), sort_keys=True
                )
            )
        assert rendered[0] == rendered[1]
