"""Unit tests for PD disaggregation."""

import pytest

from repro.cluster.disagg import DecodePool, DisaggregatedDeployment
from repro.experiments.runner import scheduler_factory
from repro.workload import PoissonArrivals, TierAssigner, TraceBuilder
from repro.workload.datasets import AZURE_CONV
from tests.conftest import Q1, make_request


class TestDecodePool:
    def test_paces_tokens(self):
        pool = DecodePool(token_pace=0.025)
        r = make_request(prompt_tokens=100, decode_tokens=4, qos=Q1)
        r.prefill_done = 100
        pool.accept(r, handoff_time=10.0)
        assert r.is_finished
        assert r.first_token_time == pytest.approx(10.025)
        assert r.completion_time == pytest.approx(10.0 + 4 * 0.025)
        assert r.max_tbt == pytest.approx(0.025)

    def test_completed_tracked(self):
        pool = DecodePool()
        r = make_request(prompt_tokens=10, decode_tokens=1)
        r.prefill_done = 10
        pool.accept(r, 0.0)
        assert pool.completed == [r]

    def test_validation(self):
        with pytest.raises(ValueError):
            DecodePool(token_pace=0.0)


class TestDisaggregatedDeployment:
    def test_end_to_end(self, execution_model):
        deployment = DisaggregatedDeployment(
            execution_model,
            scheduler_factory("fcfs", execution_model, chunk_size=8192),
            num_prefill_replicas=2,
        )
        trace = TraceBuilder(
            AZURE_CONV, arrivals=PoissonArrivals(2.0),
            tier_assigner=TierAssigner(), seed=1,
        ).build(40)
        deployment.submit_trace(trace)
        deployment.run()
        assert all(r.is_finished for r in deployment.all_requests())
        assert len(deployment.decode_pool.completed) == 40

    def test_large_chunk_prefill(self, execution_model):
        """With an 8K budget, a mid-size prompt prefills in a single
        iteration on the prefill node."""
        deployment = DisaggregatedDeployment(
            execution_model,
            scheduler_factory("fcfs", execution_model, chunk_size=8192),
        )
        r = make_request(prompt_tokens=4000, decode_tokens=5)
        deployment.submit(r)
        deployment.run()
        assert deployment.replicas[0].iterations_run == 1

    def test_summary_includes_decode_latency(self, execution_model):
        deployment = DisaggregatedDeployment(
            execution_model,
            scheduler_factory("fcfs", execution_model, chunk_size=8192),
        )
        r = make_request(prompt_tokens=1000, decode_tokens=10, qos=Q1)
        deployment.submit(r)
        deployment.run()
        summary = deployment.summarize()
        assert summary.finished == 1
        assert r.ttlt > r.ttft

    def test_validation(self, execution_model):
        with pytest.raises(ValueError):
            DisaggregatedDeployment(
                execution_model,
                scheduler_factory("fcfs", execution_model),
                num_prefill_replicas=0,
            )
