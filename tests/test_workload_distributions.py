"""Unit tests for length distributions."""

import numpy as np
import pytest
from scipy import stats

from repro.workload.distributions import LognormalLengths, _ppf_standard_normal


class TestLognormalFit:
    def test_sampled_percentiles_match_spec(self, rng):
        dist = LognormalLengths(p50=1730, p90=5696)
        samples = dist.sample(rng, 50_000)
        assert np.percentile(samples, 50) == pytest.approx(1730, rel=0.05)
        assert np.percentile(samples, 90) == pytest.approx(5696, rel=0.05)

    def test_analytic_percentiles(self):
        dist = LognormalLengths(p50=928, p90=3830)
        assert dist.percentile(0.5) == pytest.approx(928)
        assert dist.percentile(0.9) == pytest.approx(3830)

    def test_samples_are_positive_ints(self, rng):
        dist = LognormalLengths(p50=8, p90=43)
        samples = dist.sample(rng, 10_000)
        assert samples.dtype == np.int64
        assert (samples >= 1).all()

    def test_max_tokens_clipped(self, rng):
        dist = LognormalLengths(p50=1000, p90=8000, max_tokens=10_000)
        samples = dist.sample(rng, 50_000)
        assert samples.max() <= 10_000

    def test_heavy_tail(self, rng):
        """p99 well above p90 — the long-request population that the
        short/long fairness split (Figure 11) depends on."""
        dist = LognormalLengths(p50=1930, p90=6251)
        samples = dist.sample(rng, 50_000)
        assert np.percentile(samples, 99) > 1.5 * np.percentile(samples, 90)

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalLengths(p50=0, p90=10)
        with pytest.raises(ValueError):
            LognormalLengths(p50=100, p90=50)
        with pytest.raises(ValueError):
            LognormalLengths(p50=10, p90=100, max_tokens=50)

    def test_percentile_domain(self):
        dist = LognormalLengths(p50=100, p90=300)
        with pytest.raises(ValueError):
            dist.percentile(0.0)
        with pytest.raises(ValueError):
            dist.percentile(1.0)


class TestNormalPpf:
    @pytest.mark.parametrize("q", [0.001, 0.01, 0.1, 0.25, 0.5, 0.75,
                                   0.9, 0.99, 0.999])
    def test_matches_scipy(self, q):
        assert _ppf_standard_normal(q) == pytest.approx(
            stats.norm.ppf(q), abs=1e-6
        )
