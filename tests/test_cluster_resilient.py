"""Integration tests for :class:`ResilientClusterDeployment`."""

import json

import pytest

from repro.cluster.deployment import ClusterDeployment
from repro.cluster.resilient import ResilientClusterDeployment
from repro.experiments.runner import build_trace, scheduler_factory
from repro.faults import (
    FaultPlan,
    ReplicaCrash,
    ReplicaSlowdownFault,
    ResilienceConfig,
    RetryPolicy,
)
from repro.metrics.export import summary_to_dict
from repro.workload.datasets import AZURE_CODE
from tests.conftest import Q2, make_request


def chaos_trace(num_requests=120, qps=10.0, seed=7):
    return build_trace(
        AZURE_CODE,
        qps=qps,
        num_requests=num_requests,
        seed=seed,
        low_priority_fraction=0.3,
    )


def make_cluster(execution_model, num_replicas, plan, resilience=None,
                 scheduler="qoserve", routing="round-robin"):
    return ResilientClusterDeployment(
        execution_model,
        scheduler_factory(scheduler, execution_model),
        num_replicas=num_replicas,
        routing=routing,
        fault_plan=plan,
        resilience=resilience or ResilienceConfig(),
    )


def trace_span(trace):
    times = [r.arrival_time for r in trace]
    return min(times), max(times)


class TestDeterminismPin:
    def test_empty_plan_summary_byte_identical(self, execution_model):
        """With no faults the resilient deployment must be a drop-in:
        run summaries are byte-for-byte those of ClusterDeployment."""
        trace = chaos_trace()

        plain = ClusterDeployment(
            execution_model,
            scheduler_factory("qoserve", execution_model),
            num_replicas=3,
        )
        plain.submit_trace(trace.fresh_copy())
        plain.run(max_events=50_000_000)

        resilient = make_cluster(execution_model, 3, FaultPlan())
        resilient.submit_trace(trace.fresh_copy())
        resilient.run(max_events=50_000_000)

        baseline = json.dumps(
            summary_to_dict(plain.summarize()), sort_keys=True
        )
        pinned = json.dumps(
            summary_to_dict(resilient.summarize()), sort_keys=True
        )
        assert baseline == pinned

    def test_empty_plan_no_fault_activity(self, execution_model):
        trace = chaos_trace(num_requests=60)
        cluster = make_cluster(execution_model, 2, FaultPlan())
        cluster.submit_trace(trace)
        cluster.run(max_events=50_000_000)
        stats = cluster.fault_stats()
        assert stats == {
            "crashes": 0,
            "lost_to_crashes": 0,
            "retries_scheduled": 0,
            "shed": 0,
            "cancelled": 0,
            "still_waiting": 0,
            "kv_blocks_resident": 0,
        }


class TestPlanValidation:
    def test_plan_targeting_missing_replica_rejected(self, execution_model):
        plan = FaultPlan(events=(ReplicaCrash(time=1.0, replica_id=7),))
        with pytest.raises(ValueError, match="replicas \\[7\\]"):
            make_cluster(execution_model, 2, plan)


class TestCrashAndRetry:
    def test_crash_recover_everything_finishes(self, execution_model):
        trace = chaos_trace()
        lo, hi = trace_span(trace)
        span = hi - lo
        plan = FaultPlan(events=(
            ReplicaCrash(time=lo + 0.25 * span, replica_id=1,
                         recover_after=0.25 * span),
        ))
        cluster = make_cluster(execution_model, 2, plan)
        cluster.submit_trace(trace)
        cluster.run(max_events=50_000_000)
        stats = cluster.fault_stats()
        assert stats["crashes"] == 1
        assert stats["kv_blocks_resident"] == 0
        assert stats["still_waiting"] == 0
        requests = cluster.all_requests()
        assert all(
            r.is_finished or r.cancelled or r.shed for r in requests
        )
        # The crash had casualties and the retry layer resubmitted them.
        assert stats["lost_to_crashes"] > 0
        assert stats["retries_scheduled"] > 0
        retried = [r for r in requests if r.retries > 0]
        assert retried
        assert any(r.is_finished for r in retried)

    def test_retry_preserves_arrival_time(self, execution_model):
        """SLO accounting spans every attempt: arrival never rebased."""
        trace = chaos_trace()
        arrivals = {r.request_id: r.arrival_time for r in trace}
        lo, hi = trace_span(trace)
        plan = FaultPlan(events=(
            ReplicaCrash(time=lo + 0.4 * (hi - lo), replica_id=0,
                         recover_after=5.0),
        ))
        cluster = make_cluster(execution_model, 2, plan)
        cluster.submit_trace(trace)
        cluster.run(max_events=50_000_000)
        for r in cluster.all_requests():
            assert r.arrival_time == arrivals[r.request_id]

    def test_retry_budget_exhaustion_cancels(self, execution_model):
        """A replica that dies every time the request lands on it
        eventually exhausts the attempt budget."""
        r = make_request(request_id=0, prompt_tokens=2000,
                         decode_tokens=200, qos=Q2)
        # Single replica, three rapid crash/recover cycles with a
        # tight retry policy and no deadline watchdog: the third loss
        # exhausts max_attempts=3.
        plan = FaultPlan(events=(
            ReplicaCrash(time=0.1, replica_id=0, recover_after=0.05),
            ReplicaCrash(time=0.5, replica_id=0, recover_after=0.05),
            ReplicaCrash(time=1.0, replica_id=0, recover_after=0.05),
        ))
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_backoff=0.01,
                              max_backoff=0.01),
            abandonment_factor=None,
        )
        cluster = make_cluster(execution_model, 1, plan, resilience)
        cluster.submit(r)
        cluster.run(max_events=50_000_000)
        assert r.cancelled
        assert r.cancel_reason == "retry-budget"
        assert r.attempts == 3
        assert cluster.fault_stats()["kv_blocks_resident"] == 0

    def test_slowdown_applied_and_restored(self, execution_model):
        trace = chaos_trace(num_requests=40)
        lo, hi = trace_span(trace)
        plan = FaultPlan(events=(
            ReplicaSlowdownFault(time=lo + 1.0, replica_id=0,
                                 duration=0.5 * (hi - lo), factor=4.0),
        ))
        cluster = make_cluster(execution_model, 2, plan)
        cluster.submit_trace(trace)
        cluster.run(max_events=50_000_000)
        # The window ended inside the run: factor restored to nominal.
        assert cluster.replicas[0].slowdown_factor == 1.0
        assert all(
            r.is_finished or r.cancelled for r in cluster.all_requests()
        )


class TestShedding:
    def test_level1_sheds_only_free_tier(self, execution_model):
        trace = chaos_trace()
        lo, hi = trace_span(trace)
        span = hi - lo
        plan = FaultPlan(events=(
            ReplicaCrash(time=lo + 0.25 * span, replica_id=1,
                         recover_after=0.5 * span),
        ))
        resilience = ResilienceConfig(shed_free_below=0.8)
        cluster = make_cluster(execution_model, 4, plan, resilience)
        cluster.submit_trace(trace)
        cluster.run(max_events=50_000_000)
        shed = cluster.shed_requests
        assert shed, "expected free-tier arrivals during the outage"
        assert all(not r.important for r in shed)
        assert all(r.shed and r.violated_deadline for r in shed)
        # Paid traffic was never refused admission.
        assert all(
            r.is_finished for r in cluster.all_requests() if r.important
        )

    def test_victim_ordering(self, execution_model):
        cluster = make_cluster(execution_model, 2, FaultPlan())
        free = make_request(request_id=0, important=False)
        paid_batch = make_request(request_id=1, qos=Q2, important=True)
        paid_interactive = make_request(request_id=2, important=True)
        # Level 1: free tier only.
        assert cluster._sheddable(free, 1)
        assert not cluster._sheddable(paid_batch, 1)
        assert not cluster._sheddable(paid_interactive, 1)
        # Level 2: also paid non-interactive; interactive never shed.
        assert cluster._sheddable(free, 2)
        assert cluster._sheddable(paid_batch, 2)
        assert not cluster._sheddable(paid_interactive, 2)


class TestDeadlineWatchdog:
    def test_permanent_outage_abandons_everything(self, execution_model):
        trace = chaos_trace(num_requests=30)
        plan = FaultPlan(events=(
            ReplicaCrash(time=0.001, replica_id=0),  # never recovers
        ))
        resilience = ResilienceConfig(
            shed_free_below=0.0, shed_batch_below=0.0
        )
        cluster = make_cluster(execution_model, 1, plan, resilience)
        cluster.submit_trace(trace)
        cluster.run(max_events=50_000_000)
        stats = cluster.fault_stats()
        assert stats["still_waiting"] == 0
        assert stats["kv_blocks_resident"] == 0
        requests = cluster.all_requests()
        assert all(r.cancelled for r in requests)
        assert {r.cancel_reason for r in requests} == {"deadline"}

    def test_disabled_watchdog_leaves_requests_waiting(
        self, execution_model
    ):
        """abandonment_factor=None documents what the watchdog is for:
        a permanent outage strands admitted work forever."""
        plan = FaultPlan(events=(ReplicaCrash(time=0.001, replica_id=0),))
        resilience = ResilienceConfig(
            abandonment_factor=None,
            shed_free_below=0.0, shed_batch_below=0.0,
        )
        cluster = make_cluster(execution_model, 1, plan, resilience)
        cluster.submit(make_request(request_id=0, arrival_time=0.5))
        cluster.run(max_events=50_000_000)
        assert cluster.fault_stats()["still_waiting"] == 1


class TestChaosAcceptance:
    def test_paid_tier_degrades_less_than_free(self, execution_model):
        """The PR's headline: with 1 of 4 replicas down, tier-aware
        shedding + QoServe relegation keep paid-tier SLO attainment
        above free-tier attainment, and nothing leaks."""
        trace = chaos_trace()
        lo, hi = trace_span(trace)
        span = hi - lo
        plan = FaultPlan(events=(
            ReplicaCrash(time=lo + 0.25 * span, replica_id=1,
                         recover_after=0.25 * span),
        ))
        cluster = make_cluster(
            execution_model, 4, plan,
            ResilienceConfig(shed_free_below=0.8),
        )
        cluster.submit_trace(trace)
        cluster.run(max_events=50_000_000)
        stats = cluster.fault_stats()
        assert stats["crashes"] == 1
        assert stats["kv_blocks_resident"] == 0
        violations = cluster.summarize().violations
        assert violations.important_pct < violations.low_priority_pct
