"""Unit tests for SLO violation accounting."""

import math

import pytest

from repro.metrics.slo import violation_report
from tests.conftest import Q1, Q2, Q3, make_request


def served(rid, arrival=0.0, ttft=1.0, qos=Q1, prompt=1000, important=True,
           decode_tokens=2):
    r = make_request(request_id=rid, arrival_time=arrival,
                     prompt_tokens=prompt, decode_tokens=decode_tokens,
                     qos=qos, important=important)
    r.prefill_done = prompt
    r.record_output_token(arrival + ttft)
    for i in range(1, decode_tokens):
        r.record_output_token(arrival + ttft + 0.03 * i)
    return r


class TestOverall:
    def test_no_violations(self):
        requests = [served(i) for i in range(10)]
        report = violation_report(requests)
        assert report.overall_pct == 0.0
        assert report.total_requests == 10

    def test_counts_ttft_violations(self):
        good = [served(i, ttft=1.0) for i in range(8)]
        bad = [served(100 + i, ttft=10.0) for i in range(2)]
        report = violation_report(good + bad)
        assert report.overall_pct == pytest.approx(20.0)

    def test_non_interactive_judged_on_ttlt(self):
        ok = served(1, ttft=599.0, qos=Q2)          # TTLT ~599 < 600
        report = violation_report([ok])
        assert report.overall_pct == 0.0

    def test_empty(self):
        report = violation_report([])
        assert report.total_requests == 0
        assert math.isnan(report.overall_pct)


class TestNowSemantics:
    def test_pending_unexpired_excluded(self):
        pending = make_request(request_id=1, arrival_time=0.0, qos=Q1)
        done = served(2)
        report = violation_report([pending, done], now=3.0)
        assert report.total_requests == 1  # pending outcome unknown

    def test_pending_expired_counts(self):
        pending = make_request(request_id=1, arrival_time=0.0, qos=Q1)
        done = served(2)
        report = violation_report([pending, done], now=10.0)
        assert report.total_requests == 2
        assert report.overall_pct == pytest.approx(50.0)


class TestBreakdowns:
    def test_per_tier(self):
        requests = [
            served(1, ttft=1.0, qos=Q1),
            served(2, ttft=10.0, qos=Q1),
            served(3, ttft=100.0, qos=Q2),
        ]
        report = violation_report(requests)
        assert report.tier("Q1") == pytest.approx(50.0)
        assert report.tier("Q2") == 0.0
        assert math.isnan(report.tier("Q3"))

    def test_short_long_split(self):
        shorts = [served(i, prompt=100, ttft=1.0) for i in range(9)]
        long_bad = served(99, prompt=10_000, ttft=20.0)
        report = violation_report(shorts + [long_bad])
        assert report.long_pct == pytest.approx(100.0)
        assert report.short_pct == pytest.approx(0.0)
        assert report.long_threshold >= 100

    def test_importance_split(self):
        vip = served(1, important=True, ttft=1.0)
        free_bad = served(2, important=False, ttft=10.0)
        report = violation_report([vip, free_bad])
        assert report.important_pct == 0.0
        assert report.low_priority_pct == pytest.approx(100.0)

    def test_relegated_pct(self):
        requests = [served(i) for i in range(4)]
        requests[0].relegated = True
        report = violation_report(requests)
        assert report.relegated_pct == pytest.approx(25.0)


class TestPerTierEdgeCases:
    def test_absent_tier_is_nan_and_not_in_breakdown(self):
        report = violation_report([served(1, qos=Q1)])
        assert math.isnan(report.tier("Q3"))
        assert "Q3" not in report.per_tier_pct
        assert set(report.per_tier_pct) == {"Q1"}

    def test_all_violated_tier(self):
        requests = [served(i, qos=Q1, ttft=50.0) for i in range(3)]
        requests.append(served(99, qos=Q2, ttft=1.0))
        report = violation_report(requests)
        assert report.tier("Q1") == pytest.approx(100.0)
        assert report.tier("Q2") == 0.0
        assert report.overall_pct == pytest.approx(75.0)

    def test_single_request_tier(self):
        report = violation_report(
            [served(1, qos=Q1), served(2, qos=Q3, ttft=1.0)]
        )
        assert report.tier("Q3") in (0.0, 100.0)  # no fractional pct

    def test_nan_latency_requests_stay_finite(self):
        """Unfinished requests have NaN governing latency; the report
        must still produce finite percentages (violated is a boolean
        judgement, never NaN-propagating arithmetic)."""
        unfinished = make_request(request_id=1, arrival_time=0.0, qos=Q1)
        assert not unfinished.is_finished
        done = served(2, qos=Q1)
        report = violation_report([unfinished, done])
        assert report.total_requests == 2
        assert not math.isnan(report.overall_pct)
        assert not math.isnan(report.tier("Q1"))
        assert report.tier("Q1") == pytest.approx(50.0)

    def test_all_tiers_empty_report(self):
        report = violation_report([])
        assert report.per_tier_pct == {}
        assert math.isnan(report.tier("Q1"))


class TestTbtAccounting:
    def test_on_time_requests_with_clean_pacing(self):
        report = violation_report([served(1, decode_tokens=10)])
        assert report.tbt_miss_pct == 0.0

    def test_late_ttft_excluded_from_tbt(self):
        """A request that blew TTFT must not pollute the TBT metric."""
        late = served(1, ttft=20.0, decode_tokens=10)
        report = violation_report([late])
        assert report.tbt_miss_pct == 0.0

    def test_slow_pacing_counts(self):
        r = make_request(request_id=1, arrival_time=0.0, prompt_tokens=10,
                         decode_tokens=3, qos=Q1)
        r.prefill_done = 10
        r.record_output_token(1.0)
        r.record_output_token(9.0)   # blows the cumulative deadline
        r.record_output_token(9.01)
        report = violation_report([r])
        assert report.tbt_miss_pct > 0
