"""Unit tests for dataset presets (Table 2)."""

import numpy as np
import pytest

from repro.workload.datasets import AZURE_CODE, AZURE_CONV, DATASETS, SHAREGPT


class TestTable2Fidelity:
    """Each preset must reproduce the published p50/p90 of Table 2."""

    @pytest.mark.parametrize(
        "dataset,prompt_p50,prompt_p90,decode_p50,decode_p90",
        [
            (SHAREGPT, 1730, 5696, 415, 834),
            (AZURE_CONV, 928, 3830, 41, 342),
            (AZURE_CODE, 1930, 6251, 8, 43),
        ],
    )
    def test_percentiles(self, rng, dataset, prompt_p50, prompt_p90,
                         decode_p50, decode_p90):
        prompts, decodes = dataset.sample(rng, 40_000)
        assert np.percentile(prompts, 50) == pytest.approx(
            prompt_p50, rel=0.06
        )
        assert np.percentile(prompts, 90) == pytest.approx(
            prompt_p90, rel=0.06
        )
        assert np.percentile(decodes, 50) == pytest.approx(
            decode_p50, rel=0.12
        )
        assert np.percentile(decodes, 90) == pytest.approx(
            decode_p90, rel=0.12
        )

    def test_azcode_is_prefill_dominated(self, rng):
        """Azure Code is autocomplete: tiny decodes, long prompts."""
        prompts, decodes = AZURE_CODE.sample(rng, 5000)
        assert prompts.mean() > 50 * decodes.mean()

    def test_sharegpt_is_decode_heavy(self, rng):
        _, decodes = SHAREGPT.sample(rng, 5000)
        assert decodes.mean() > 300

    def test_registry(self):
        assert set(DATASETS) == {"ShareGPT", "AzConv", "AzCode"}
        assert DATASETS["AzCode"] is AZURE_CODE

    def test_sample_shapes(self, rng):
        prompts, decodes = AZURE_CONV.sample(rng, 17)
        assert len(prompts) == len(decodes) == 17
