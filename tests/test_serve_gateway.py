"""Unit tests for the serving gateway (repro.serve): clock, admission,
and the deterministic ``speed=inf`` replay path."""

import heapq
import json
import math

import pytest

from repro.api import ServeConfig, Session, build_trace, simulate
from repro.core.relegation import ViolationChecker
from repro.metrics.export import summary_to_dict
from repro.serve import (
    REASON_BACKPRESSURE,
    REASON_RATE_LIMIT,
    AdmissionConfig,
    AdmissionController,
    GatewayConfig,
    ServeGateway,
    TokenBucket,
    VirtualClock,
    pick_shed_victim,
)
from repro.serve.gateway import SHED_CANCEL_REASON
from repro.workload.datasets import AZURE_CONV
from tests.conftest import make_request


def _canonical(summary) -> str:
    return json.dumps(summary_to_dict(summary), sort_keys=True)


def _fig10_style_trace(seed=13, num_requests=35):
    """A small load-sweep workload: the fig10/11 construction recipe."""
    return build_trace(
        AZURE_CONV, qps=4.0, num_requests=num_requests, seed=seed
    )


class TestVirtualClock:
    def test_inf_has_no_target(self):
        clock = VirtualClock(math.inf)
        assert not clock.is_realtime
        clock.start(5.0)
        assert clock.target() is None
        assert clock.wall_delay_until(100.0) == 0.0

    def test_finite_speed_scales_wall_time(self):
        wall = [100.0]
        clock = VirtualClock(10.0, timer=lambda: wall[0])
        clock.start(0.0)
        wall[0] = 102.0  # 2 wall seconds at 10x
        assert clock.target() == pytest.approx(20.0)
        # 30 virtual seconds ahead of target = 1 more wall second.
        assert clock.wall_delay_until(30.0) == pytest.approx(1.0)
        assert clock.wall_delay_until(5.0) == 0.0

    def test_requires_positive_speed(self):
        with pytest.raises(ValueError):
            VirtualClock(0.0)
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_target_before_start(self):
        with pytest.raises(RuntimeError):
            VirtualClock(2.0).target()

    def test_set_speed_preserves_continuity(self):
        """Changing speed mid-run re-anchors at the current target, so
        virtual time never jumps at the switch point."""
        wall = [100.0]
        clock = VirtualClock(10.0, timer=lambda: wall[0])
        clock.start(0.0)
        wall[0] = 102.0  # target is now 20 virtual seconds
        clock.set_speed(1.0)
        assert clock.target() == pytest.approx(20.0)
        wall[0] = 105.0  # 3 more wall seconds at 1x
        assert clock.target() == pytest.approx(23.0)

    def test_set_speed_inf_to_finite_uses_anchor(self):
        wall = [50.0]
        clock = VirtualClock(math.inf, timer=lambda: wall[0])
        clock.start(0.0)
        assert clock.target() is None
        clock.set_speed(2.0, virtual_now=300.0)
        assert clock.is_realtime
        wall[0] = 51.0
        assert clock.target() == pytest.approx(302.0)

    def test_set_speed_inf_to_finite_without_anchor(self):
        """With no anchor given, inf -> finite restarts from the epoch
        the clock was started at (inf has no meaningful target)."""
        wall = [50.0]
        clock = VirtualClock(math.inf, timer=lambda: wall[0])
        clock.start(7.0)
        clock.set_speed(4.0)
        wall[0] = 52.0
        assert clock.target() == pytest.approx(7.0 + 8.0)

    def test_set_speed_monotonic_target(self):
        """The target never runs backwards across repeated changes."""
        wall = [0.0]
        clock = VirtualClock(5.0, timer=lambda: wall[0])
        clock.start(0.0)
        last = 0.0
        for step, speed in enumerate([1.0, 100.0, 0.5, 10.0], start=1):
            wall[0] = float(step)
            clock.set_speed(speed)
            target = clock.target()
            assert target >= last
            last = target

    def test_set_speed_rejects_non_positive(self):
        clock = VirtualClock(1.0)
        for bad in (0.0, -2.0, float("nan")):
            with pytest.raises(ValueError):
                clock.set_speed(bad)

    def test_set_speed_before_start(self):
        wall = [0.0]
        clock = VirtualClock(2.0, timer=lambda: wall[0])
        clock.set_speed(8.0)
        assert clock.speed == 8.0
        clock.start(1.0)
        assert clock.target() == pytest.approx(1.0)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(1.0)  # one virtual second refills one
        assert not bucket.try_take(1.0)

    def test_deterministic_sequence(self):
        def admit_pattern():
            bucket = TokenBucket(rate=0.5, burst=1.0)
            return [bucket.try_take(t * 0.7) for t in range(20)]

        assert admit_pattern() == admit_pattern()

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        # An out-of-order timestamp must not mint extra tokens.
        assert not bucket.try_take(5.0)

    def test_fill_is_a_pure_peek(self):
        """``fill`` never commits refill state: a scrape between two
        takes must not change the admission sequence."""
        def admit_pattern(scrape: bool):
            bucket = TokenBucket(rate=0.5, burst=1.0)
            decisions = []
            for t in range(20):
                if scrape:
                    bucket.fill(t * 0.7)
                    bucket.fill(t * 0.7 + 0.3)
                decisions.append(bucket.try_take(t * 0.7))
            return decisions

        assert admit_pattern(scrape=True) == admit_pattern(scrape=False)

    def test_fill_reports_refill_up_to_burst(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.fill(0.0) == pytest.approx(2.0)
        assert bucket.try_take(0.0)
        assert bucket.fill(0.0) == pytest.approx(1.0)
        assert bucket.fill(0.5) == pytest.approx(1.5)
        assert bucket.fill(100.0) == pytest.approx(2.0)  # capped


class TestShedVictimOrdering:
    def test_matches_relegation_heap_order(self, execution_model):
        """The victim is exactly who RelegationPolicy would pop first."""
        checker = ViolationChecker(
            execution_model.seconds_per_prefill_token()
        )
        pool = [
            make_request(request_id=i, prompt_tokens=p, important=False)
            for i, p in enumerate([400, 2600, 900, 2600, 50])
        ]
        heap = [
            (-checker.prefill_service_time(r), r.request_id, r)
            for r in pool
        ]
        heapq.heapify(heap)
        expected = heap[0][2]
        assert pick_shed_victim(pool, checker) is expected
        assert expected.request_id == 1  # largest prefill, lowest id

    def test_important_requests_are_never_victims(self, execution_model):
        checker = ViolationChecker(
            execution_model.seconds_per_prefill_token()
        )
        protected = make_request(
            request_id=0, prompt_tokens=5000, important=True
        )
        small = make_request(
            request_id=1, prompt_tokens=10, important=False
        )
        assert pick_shed_victim([protected, small], checker) is small
        assert pick_shed_victim([protected], checker) is None


class TestAdmissionController:
    def _controller(self, execution_model, **kwargs):
        checker = ViolationChecker(
            execution_model.seconds_per_prefill_token()
        )
        return AdmissionController(AdmissionConfig(**kwargs), checker)

    def test_rate_limit_refuses(self, execution_model):
        controller = self._controller(
            execution_model, rate=1.0, burst=1.0
        )
        first = controller.decide(
            make_request(request_id=0), 0.0, queue_depth=0, pending=[]
        )
        second = controller.decide(
            make_request(request_id=1), 0.0, queue_depth=0, pending=[]
        )
        assert first.admitted
        assert not second.admitted
        assert second.reason == REASON_RATE_LIMIT

    def test_per_tier_rate_override(self, execution_model):
        controller = self._controller(
            execution_model, rate=None, burst=1.0,
            per_tier_rate={"Q1": 0.1},
        )
        assert controller.decide(
            make_request(request_id=0), 0.0, queue_depth=0, pending=[]
        ).admitted
        assert not controller.decide(
            make_request(request_id=1), 0.0, queue_depth=0, pending=[]
        ).admitted

    def test_backpressure_picks_victim(self, execution_model):
        controller = self._controller(execution_model, max_queue_depth=1)
        queued = make_request(
            request_id=0, prompt_tokens=4000, important=False
        )
        incoming = make_request(
            request_id=1, prompt_tokens=100, important=False
        )
        decision = controller.decide(
            incoming, 0.0, queue_depth=2, pending=[queued]
        )
        assert decision.admitted
        assert decision.victim is queued

    def test_backpressure_refuses_when_self_is_victim(
        self, execution_model
    ):
        controller = self._controller(execution_model, max_queue_depth=1)
        queued = make_request(
            request_id=0, prompt_tokens=100, important=True
        )
        incoming = make_request(
            request_id=1, prompt_tokens=4000, important=False
        )
        decision = controller.decide(
            incoming, 0.0, queue_depth=2, pending=[queued]
        )
        assert not decision.admitted
        assert decision.reason == REASON_BACKPRESSURE


class TestReplayByteIdentity:
    def test_replay_matches_batch_path(self):
        """``--speed inf`` replay == batch simulation, byte for byte."""
        batch = simulate(
            config=ServeConfig(scheduler="qoserve"),
            trace=_fig10_style_trace(),
        )
        session = Session(ServeConfig(scheduler="qoserve"))
        gateway = ServeGateway(session)
        replayed = gateway.replay(_fig10_style_trace())
        assert _canonical(replayed) == _canonical(batch)
        assert gateway.stats.admitted_total == 35
        assert gateway.stats.shed_total == 0
        assert gateway.stats.tokens_streamed_total == sum(
            r.decode_tokens for r in gateway.offered
        )

    def test_replay_requires_inf_speed(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        gateway = ServeGateway(
            session, config=GatewayConfig(speed=10.0)
        )
        with pytest.raises(ValueError, match="speed=inf"):
            gateway.replay(_fig10_style_trace(num_requests=2))


class TestDeterministicShedding:
    def _run(self, admission: AdmissionConfig):
        session = Session(ServeConfig(scheduler="fcfs"))
        gateway = ServeGateway(
            session, config=GatewayConfig(admission=admission)
        )
        summary = gateway.replay(_fig10_style_trace(seed=9))
        return gateway, summary

    def test_rate_limit_sheds_deterministically(self):
        admission = AdmissionConfig(rate=0.5, burst=1.0)
        first, summary_a = self._run(admission)
        second, summary_b = self._run(admission)
        assert first.stats.shed_total > 0
        assert first.stats.to_dict() == second.stats.to_dict()
        assert _canonical(summary_a) == _canonical(summary_b)
        refused = [r for r in first.offered if r.shed]
        assert len(refused) == first.stats.shed_total
        for request in refused:
            assert not request.is_finished

    def test_backpressure_refuses_important_only_pool(self):
        # Equal-thirds traces are all-important: nobody is evictable,
        # so breaching the depth bound refuses the incoming request.
        gateway, _ = self._run(AdmissionConfig(max_queue_depth=2))
        assert gateway.stats.shed_total > 0
        for (_, reason), count in gateway.stats.shed.items():
            assert reason == REASON_BACKPRESSURE
            assert count > 0
        assert not any(
            r.cancel_reason == SHED_CANCEL_REASON for r in gateway.offered
        )

    def test_backpressure_evicts_low_priority_victims(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        gateway = ServeGateway(
            session,
            config=GatewayConfig(
                admission=AdmissionConfig(max_queue_depth=1)
            ),
        )
        trace = build_trace(
            AZURE_CONV, qps=6.0, num_requests=30, seed=21,
            low_priority_fraction=0.6,
        )
        gateway.replay(trace)
        victims = [
            r for r in gateway.offered
            if r.cancel_reason == SHED_CANCEL_REASON
        ]
        assert victims, "expected at least one backpressure eviction"
        for victim in victims:
            assert not victim.important


class TestGatewayObservability:
    def test_events_and_counters(self):
        from repro.obs import (
            ListSink,
            TraceRecorder,
            TracingObserver,
            validate_event,
        )

        sink = ListSink()
        observer = TracingObserver(TraceRecorder([sink]))
        session = Session(ServeConfig(scheduler="fcfs"), observer=observer)
        gateway = ServeGateway(
            session,
            config=GatewayConfig(
                admission=AdmissionConfig(rate=0.5, burst=1.0)
            ),
        )
        gateway.replay(_fig10_style_trace(seed=9, num_requests=20))
        kinds = {event["kind"] for event in sink.events}
        assert "gateway_admitted" in kinds
        assert "gateway_shed" in kinds
        for event in sink.events:
            validate_event(event)
        text = observer.registry.to_prometheus_text()
        assert "repro_gateway_admitted_total" in text
        assert "repro_gateway_tokens_streamed_total" in text
        assert 'reason="rate_limit"' in text

    def test_prometheus_fallback_without_registry(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        gateway = ServeGateway(session)
        gateway.replay(_fig10_style_trace(seed=9, num_requests=5))
        text = gateway.prometheus_text()
        assert "repro_gateway_admitted_total" in text
        assert 'tier="' in text

    def test_scrape_gauges_in_fallback_text(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        gateway = ServeGateway(
            session,
            config=GatewayConfig(
                admission=AdmissionConfig(rate=2.0, burst=4.0)
            ),
        )
        gateway.replay(_fig10_style_trace(seed=9, num_requests=5))
        text = gateway.prometheus_text()
        assert "# TYPE repro_gateway_queue_depth gauge" in text
        assert "repro_gateway_queue_depth 0" in text
        fills = [
            line for line in text.splitlines()
            if line.startswith("repro_gateway_token_bucket_fill{")
        ]
        assert fills
        for line in fills:
            assert 0.0 <= float(line.rsplit(" ", 1)[1]) <= 4.0

    def test_scrape_gauges_in_registry_text(self):
        from repro.obs import ListSink, TraceRecorder, TracingObserver

        observer = TracingObserver(TraceRecorder([ListSink()]))
        session = Session(ServeConfig(scheduler="fcfs"), observer=observer)
        gateway = ServeGateway(
            session,
            config=GatewayConfig(
                admission=AdmissionConfig(rate=2.0, burst=4.0)
            ),
        )
        gateway.replay(_fig10_style_trace(seed=9, num_requests=5))
        text = gateway.prometheus_text()
        assert "# TYPE repro_gateway_queue_depth gauge" in text
        assert 'repro_gateway_token_bucket_fill{tier="' in text
        # Scraping twice must not perturb admission state.
        assert gateway.prometheus_text() == text
