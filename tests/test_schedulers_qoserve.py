"""Unit and behavioural tests for the QoServe scheduler (Algorithm 1)."""

import pytest

from repro.engine.interface import EngineView
from repro.engine.kvcache import KVCacheManager
from repro.schedulers import QoServeConfig, QoServeScheduler
from repro.schedulers.qoserve import make_ablation_config
from tests.conftest import Q1, Q2, Q3, make_request


@pytest.fixture
def scheduler(execution_model):
    # Oracle predictor: deterministic and fast for unit tests.
    return QoServeScheduler(
        execution_model, QoServeConfig(use_forest_predictor=False)
    )


def make_view(execution_model, decode_requests=(), inflight=frozenset()):
    return EngineView(
        now=0.0,
        decode_requests=list(decode_requests),
        kv_cache=KVCacheManager(capacity_tokens=400_000),
        execution_model=execution_model,
        max_decode_slots=256,
        inflight_prefill_ids=inflight,
    )


def at(view, t):
    view.now = t
    return view


class TestPriorityOrdering:
    def test_relegated_sorts_last(self, scheduler):
        normal = make_request(request_id=1, qos=Q1)
        demoted = make_request(request_id=2, qos=Q1)
        demoted.relegated = True
        assert scheduler.priority(normal, 0.0) < scheduler.priority(
            demoted, 0.0
        )

    def test_hybrid_disabled_is_edf(self, execution_model):
        scheduler = QoServeScheduler(
            execution_model,
            make_ablation_config(use_forest_predictor=False),
        )
        long = make_request(arrival_time=0.0, prompt_tokens=9000, qos=Q1)
        short = make_request(arrival_time=1.0, prompt_tokens=10, qos=Q1)
        assert scheduler.priority(long, 0.0) < scheduler.priority(short, 0.0)

    def test_fixed_alpha_weighs_length(self, execution_model):
        scheduler = QoServeScheduler(
            execution_model,
            QoServeConfig(alpha=0.008, use_forest_predictor=False),
        )
        long = make_request(arrival_time=0.0, prompt_tokens=9000, qos=Q1)
        short = make_request(arrival_time=1.0, prompt_tokens=10, qos=Q1)
        assert scheduler.priority(short, 0.0) < scheduler.priority(
            long, 0.0
        )


class TestDynamicBudget:
    def test_no_decodes_gives_max_chunk(self, scheduler, execution_model):
        r = make_request(request_id=1, prompt_tokens=5000, qos=Q2)
        scheduler.enqueue(r, 0.0)
        view = make_view(execution_model)
        assignments = scheduler.plan_prefill(view)
        assert sum(a.tokens for a in assignments) == pytest.approx(
            scheduler.config.max_chunk_size
        )

    def test_strict_decode_shrinks_budget(self, scheduler, execution_model):
        decode = make_request(request_id=2, prompt_tokens=100,
                              decode_tokens=50, qos=Q1)
        decode.prefill_done = 100
        decode.decoded = 1
        queued = make_request(request_id=1, prompt_tokens=5000, qos=Q2)
        scheduler.enqueue(queued, 0.0)
        view = at(make_view(execution_model, [decode]), 6.0)
        assignments = scheduler.plan_prefill(view)
        total = sum(a.tokens for a in assignments)
        assert 0 < total < 512

    def test_dynamic_chunking_disabled_uses_fixed(self, execution_model):
        scheduler = QoServeScheduler(
            execution_model,
            QoServeConfig(dynamic_chunking=False,
                          use_forest_predictor=False),
        )
        r = make_request(request_id=1, prompt_tokens=5000, qos=Q2)
        scheduler.enqueue(r, 0.0)
        assignments = scheduler.plan_prefill(make_view(execution_model))
        assert sum(a.tokens for a in assignments) == 256


class TestEagerRelegation:
    def test_hopeless_request_demoted(self, scheduler, execution_model):
        hopeless = make_request(request_id=1, prompt_tokens=2000, qos=Q1,
                                arrival_time=0.0)
        fine = make_request(request_id=2, prompt_tokens=500, qos=Q1,
                            arrival_time=9.5)
        scheduler.enqueue(hopeless, 9.5)
        scheduler.enqueue(fine, 9.5)
        view = at(make_view(execution_model), 9.5)  # deadline 6.0 passed
        assignments = scheduler.plan_prefill(view)
        assert hopeless.relegated
        assert not fine.relegated
        # The healthy request runs first; the relegated one only gets
        # leftover budget.
        assert assignments[0].request is fine

    def test_relegation_disabled_keeps_order(self, execution_model):
        scheduler = QoServeScheduler(
            execution_model,
            QoServeConfig(eager_relegation=False,
                          use_forest_predictor=False),
        )
        hopeless = make_request(request_id=1, prompt_tokens=2000, qos=Q1)
        scheduler.enqueue(hopeless, 9.5)
        view = at(make_view(execution_model), 9.5)
        scheduler.plan_prefill(view)
        assert not hopeless.relegated

    def test_low_priority_demoted_for_important(self, scheduler,
                                                execution_model):
        blockers = [
            make_request(request_id=i, prompt_tokens=20_000, qos=Q1,
                         arrival_time=0.0, important=False)
            for i in range(4)
        ]
        vip = make_request(request_id=99, prompt_tokens=20_000, qos=Q1,
                           arrival_time=0.1, important=True)
        for r in blockers:
            scheduler.enqueue(r, 1.0)
        scheduler.enqueue(vip, 1.0)
        view = at(make_view(execution_model), 1.0)
        scheduler.plan_prefill(view)
        assert not vip.relegated
        assert any(r.relegated for r in blockers)

    def test_relegated_served_opportunistically(self, scheduler,
                                                execution_model):
        demoted = make_request(request_id=1, prompt_tokens=1000, qos=Q1)
        demoted.relegated = True
        scheduler.enqueue(demoted, 0.0)
        assignments = scheduler.plan_prefill(make_view(execution_model))
        assert assignments and assignments[0].request is demoted

    def test_relegation_counter(self, scheduler, execution_model):
        hopeless = make_request(request_id=1, prompt_tokens=2000, qos=Q1)
        scheduler.enqueue(hopeless, 9.5)
        scheduler.plan_prefill(at(make_view(execution_model), 9.5))
        assert scheduler.relegation_events == 1


class TestSelectivePreemption:
    def test_at_risk_inflight_pinned(self, scheduler, execution_model):
        inflight = make_request(request_id=1, prompt_tokens=2000, qos=Q1,
                                arrival_time=0.0)
        inflight.prefill_done = 1800
        inflight.scheduled_first_time = 0.1
        urgent = make_request(request_id=2, prompt_tokens=50, qos=Q1,
                              arrival_time=5.55)
        scheduler.enqueue(inflight, 0.0)
        scheduler.enqueue(urgent, 5.55)
        # At t=5.55 the in-flight request has ~0.2 s of slack, less
        # than one iteration: preempting it would violate, so it is
        # pinned despite the newcomer's better hybrid score.
        view = at(
            make_view(execution_model, inflight=frozenset({1})), 5.55
        )
        assignments = scheduler.plan_prefill(view)
        assert assignments[0].request is inflight

    def test_safe_inflight_can_be_preempted(self, execution_model):
        scheduler = QoServeScheduler(
            execution_model,
            QoServeConfig(alpha=0.008, use_forest_predictor=False),
        )
        inflight = make_request(request_id=1, prompt_tokens=6000, qos=Q2,
                                arrival_time=0.0)
        inflight.prefill_done = 256
        inflight.scheduled_first_time = 0.1
        urgent = make_request(request_id=2, prompt_tokens=50, qos=Q1,
                              arrival_time=0.2)
        scheduler.enqueue(inflight, 0.0)
        scheduler.enqueue(urgent, 0.2)
        view = at(
            make_view(execution_model, inflight=frozenset({1})), 0.2
        )
        assignments = scheduler.plan_prefill(view)
        assert assignments[0].request is urgent

    def test_decodes_never_preempted_by_design(self, execution_model):
        """Structural: the engine batches every decode each iteration;
        the scheduler only chooses prefill work."""
        scheduler = QoServeScheduler(
            execution_model, QoServeConfig(use_forest_predictor=False)
        )
        decode = make_request(request_id=1, prompt_tokens=10,
                              decode_tokens=50)
        decode.prefill_done = 10
        view = make_view(execution_model, [decode])
        assignments = scheduler.plan_prefill(view)
        assert all(a.request is not decode for a in assignments)


class TestAblationConfig:
    def test_all_off_is_edf_baseline(self):
        config = make_ablation_config()
        assert not config.dynamic_chunking
        assert not config.eager_relegation
        assert not config.hybrid_prioritization
        assert not config.selective_preemption

    def test_full_stack(self):
        config = make_ablation_config(
            dynamic_chunking=True, eager_relegation=True,
            hybrid_prioritization=True,
        )
        assert config.dynamic_chunking
        assert config.selective_preemption
