"""Radix prefix cache: unit semantics, refcount no-leak property,
byte-identity pin for ``kv_reuse="off"``, and end-to-end reuse.

The no-leak property test mirrors the fault-suite style: random
interleavings of admit / KV-pressure relegation / eviction / crash /
cancel against a deliberately tiny KV ledger, with the tree and ledger
invariants re-derived from scratch after every step.  The byte-identity
pin carries event-stream checksums captured from the pre-prefix-cache
code: ``kv_reuse="off"`` must keep producing exactly those streams
across qoserve/medha x objects/arrays.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.api import ServeConfig, Session, build_trace
from repro.core.request import Request
from repro.engine import ReplicaConfig, ReplicaEngine
from repro.engine.arrays import ArrayKVLedger, ArrayReplicaEngine
from repro.engine.interface import KVLedger
from repro.engine.kvcache import KVCacheManager
from repro.engine.prefix import RadixPrefixCache
from repro.obs import ListSink, TraceRecorder, TracingObserver
from repro.perfmodel import A100_80GB, LLAMA3_8B, ExecutionModel
from repro.schedulers import FCFSScheduler
from repro.simcore import Simulator
from repro.workload.datasets import AZURE_CODE
from repro.workload.sessions import (
    AGENT_PROFILE,
    SessionWorkload,
    session_turn_index,
)
from tests.conftest import Q2, make_request

BS = 16

ENGINES = {"objects": ReplicaEngine, "arrays": ArrayReplicaEngine}


def ids(n, base=0):
    return tuple(range(base, base + n))


def make_cache(capacity_tokens=1600):
    ledger = KVCacheManager(capacity_tokens=capacity_tokens, block_size=BS)
    cache = RadixPrefixCache(ledger)
    ledger.set_reclaimer(cache)
    return cache, ledger


class TestRadixUnit:
    def test_protocol_conformance(self):
        assert isinstance(KVCacheManager(160), KVLedger)
        from repro.engine.arrays import _RowStore

        assert isinstance(ArrayKVLedger(160, 16, _RowStore()), KVLedger)

    def test_miss_then_insert_then_hit(self):
        cache, ledger = make_cache()
        assert cache.match_and_lock(1, ids(100), 99) == 0
        assert cache.misses == 1
        ledger.grow(1, 100)
        created, deduped = cache.insert_and_lock(1, ids(100))
        assert (created, deduped) == (6, 0)  # 100 // 16 full blocks
        # 6 node blocks + the request's 4-token remainder block.
        assert ledger.used_blocks == 7
        assert ledger.holding(1) == 4
        cache.unlock(1)
        hit = cache.match_and_lock(2, ids(100), 99)
        assert hit == 6 * BS  # 99-token cap still admits 6 full blocks
        assert cache.hits == 1 and cache.hit_tokens == 96
        cache.unlock(2)
        assert cache.total_refs() == 0

    def test_insert_dedupes_shared_blocks(self):
        cache, ledger = make_cache()
        ledger.grow(1, 64)
        cache.insert_and_lock(1, ids(64))
        used = ledger.used_blocks
        # A second request recomputed the same 4 blocks privately.
        ledger.grow(2, 64)
        created, deduped = cache.insert_and_lock(2, ids(64))
        assert (created, deduped) == (0, 4)
        assert ledger.used_blocks == used  # duplicates freed
        assert ledger.holding(2) == 0
        cache.unlock(1)
        cache.unlock(2)

    def test_matched_prefix_not_deduped_on_insert(self):
        cache, ledger = make_cache()
        ledger.grow(1, 64)
        cache.insert_and_lock(1, ids(64))
        cache.unlock(1)
        # Request 2 matched 64 tokens at admission: it never held those
        # blocks privately, so insert must only dedupe beyond them.
        assert cache.match_and_lock(2, ids(96), 95) == 64
        ledger.grow(2, 32)  # the uncached suffix only
        created, deduped = cache.insert_and_lock(2, ids(96))
        assert (created, deduped) == (2, 0)
        assert ledger.holding(2) == 0
        cache.unlock(2)
        assert cache.total_refs() == 0

    def test_double_lock_raises(self):
        cache, ledger = make_cache()
        ledger.grow(1, 32)
        cache.insert_and_lock(1, ids(32))
        with pytest.raises(RuntimeError, match="already holds"):
            cache.match_and_lock(1, ids(32), 31)

    def test_unlock_is_idempotent(self):
        cache, ledger = make_cache()
        ledger.grow(1, 32)
        cache.insert_and_lock(1, ids(32))
        cache.unlock(1)
        cache.unlock(1)
        assert cache.total_refs() == 0

    def test_reclaim_lru_leaves_first(self):
        cache, ledger = make_cache()
        ledger.grow(1, 48)
        cache.insert_and_lock(1, ids(48))
        cache.unlock(1)
        # Touch the shallow prefix via a short re-match.
        assert cache.match_and_lock(2, ids(16), 1000) == 16
        cache.unlock(2)
        freed = cache.reclaim(1)
        assert freed == 1 and cache.evictions == 1
        # The deepest (least recently touched path end) went first;
        # the root-adjacent block is still matchable.
        assert cache.match_and_lock(3, ids(48), 1000) == 32
        cache.unlock(3)

    def test_reclaim_skips_referenced_paths(self):
        cache, ledger = make_cache()
        ledger.grow(1, 48)
        cache.insert_and_lock(1, ids(48))  # still locked
        assert cache.reclaimable_blocks() == 0
        assert cache.reclaim(10) == 0
        cache.unlock(1)
        assert cache.reclaimable_blocks() == 3
        assert cache.reclaim(10) == 3
        assert ledger.used_blocks == 0

    def test_ledger_reclaims_under_pressure(self):
        cache, ledger = make_cache(capacity_tokens=160)  # 10 blocks
        ledger.grow(1, 96)
        cache.insert_and_lock(1, ids(96))
        cache.unlock(1)
        assert ledger.used_blocks == 6
        # 4 free blocks; growing 7 must reclaim 3 evictable nodes.
        assert ledger.can_grow(2, 7 * BS)
        ledger.grow(2, 7 * BS)
        assert cache.evictions == 3
        assert ledger.used_blocks == 3 + 7

    def test_flush_releases_everything(self):
        cache, ledger = make_cache()
        ledger.grow(1, 96)
        cache.insert_and_lock(1, ids(96))
        assert cache.flush() == 6
        assert cache.cached_blocks == 0
        assert cache.total_refs() == 0
        assert ledger.used_blocks == 0
        cache.unlock(1)  # stale lock entry is gone; must not raise

    def test_insert_can_empty_a_holding(self):
        # Prompt an exact multiple of the block size, fully shared:
        # dedupe frees every private block and the holding vanishes.
        cache, ledger = make_cache()
        ledger.grow(1, 64)
        cache.insert_and_lock(1, ids(64))
        ledger.grow(2, 64)
        cache.insert_and_lock(2, ids(64))
        assert 2 not in ledger.holders()
        cache.unlock(1)
        cache.unlock(2)


class TestUsedTokensCounter:
    """The O(1) running counter stays exact under arbitrary churn."""

    @staticmethod
    def brute_force(ledger):
        return sum(ledger.holding(h) for h in ledger.holders())

    def test_object_ledger_exact_under_churn(self):
        rng = np.random.default_rng(7)
        kv = KVCacheManager(capacity_tokens=100_000, block_size=BS)
        live = set()
        for step in range(400):
            op = rng.integers(0, 10)
            rid = int(rng.integers(0, 12))
            if op < 6:
                tokens = int(rng.integers(1, 300))
                if kv.can_grow(rid, tokens):
                    kv.grow(rid, tokens)
                    live.add(rid)
            elif op < 8 and rid in live:
                kv.release(rid)
                live.discard(rid)
            elif rid in live and kv.holding(rid) >= BS:
                blocks = int(rng.integers(1, kv.holding(rid) // BS + 1))
                kv.shrink(rid, blocks * BS, blocks)
                if rid not in kv.holders():
                    live.discard(rid)
            assert kv.used_tokens == self.brute_force(kv)
        for rid in sorted(live):
            kv.release(rid)
        assert kv.used_tokens == 0

    def test_array_ledger_exact_under_churn(self):
        from repro.engine.arrays import _RowStore

        rng = np.random.default_rng(11)
        rows = _RowStore()
        kv = ArrayKVLedger(100_000, BS, rows)
        live = set()
        for step in range(300):
            op = rng.integers(0, 10)
            rid = int(rng.integers(0, 12))
            if op < 6:
                tokens = int(rng.integers(1, 300))
                if kv.can_grow(rid, tokens):
                    kv.grow(rid, tokens)
                    live.add(rid)
            elif rid in live:
                kv.release(rid)
                live.discard(rid)
            assert kv.used_tokens == self.brute_force(kv)

    def test_engine_cancel_keeps_counter_exact(self, execution_model):
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model, FCFSScheduler(chunk_size=256),
            ReplicaConfig(),
        )
        requests = [
            make_request(request_id=i, prompt_tokens=700, decode_tokens=30)
            for i in range(6)
        ]
        for r in requests:
            engine.submit(r)
        sim.run(until=0.05)
        kv = engine.kv_cache
        assert kv.used_tokens == self.brute_force(kv)
        victim = next(r for r in requests if not r.is_finished)
        engine.cancel_request(victim, "test")
        assert kv.used_tokens == self.brute_force(kv)
        sim.run()
        assert kv.used_tokens == self.brute_force(kv)


def _tree_invariants(engine):
    """Re-derive every tree/ledger invariant from scratch."""
    cache = engine.prefix_cache
    ledger = engine.kv_cache
    nodes = []
    stack = list(cache._root.children.values())
    while stack:
        node = stack.pop()
        nodes.append(node)
        stack.extend(node.children.values())
        for child in node.children.values():
            # Locking increments every ancestor.
            assert node.ref_count >= child.ref_count
        # Every resident node owns exactly one ledger block.
        assert node.alive
        assert node.owner_id < 0
        assert ledger.holding(node.owner_id) == ledger.block_size
    assert len(nodes) == cache.cached_blocks
    assert cache.reclaimable_blocks() == sum(
        1 for n in nodes if n.ref_count == 0
    )
    # Locked paths account for every reference in the tree.
    assert cache.total_refs() == sum(
        node.depth for node in cache._locked.values()
    )
    # Ledger conservation: the running token counter is exact.
    assert ledger.used_tokens == sum(
        ledger.holding(h) for h in ledger.holders()
    )


@pytest.mark.parametrize("engine_kind", sorted(ENGINES))
@pytest.mark.parametrize("seed", [3, 17])
def test_refcounts_never_leak_property(engine_kind, seed):
    """Random admit/relegate/evict/crash/cancel interleavings: the
    radix tree must never leak a reference or a ledger block."""
    execution_model = ExecutionModel(LLAMA3_8B, A100_80GB)
    # Tiny KV so eviction, stall relegation and reclaim all fire.
    execution_model._kv_capacity_tokens = 8 * 1024
    sim = Simulator()
    engine = ENGINES[engine_kind](
        sim, execution_model, FCFSScheduler(chunk_size=256),
        ReplicaConfig(kv_reuse="radix"),
    )
    rng = np.random.default_rng(seed)
    streams: dict[int, int] = {}
    generation: dict[int, int] = {}
    submitted: list[Request] = []
    next_id = 0

    for step in range(140):
        op = int(rng.integers(0, 12))
        if op < 6 and engine.healthy:
            sid = int(rng.integers(0, 5))
            prev = streams.get(sid, 0)
            grow = int(rng.integers(64, 700))
            total = prev + grow
            if total > 2600:  # context window: start a fresh thread
                generation[sid] = generation.get(sid, 0) + 1
                total = grow
            streams[sid] = total
            base = (sid * 131 + generation.get(sid, 0)) * 1_000_000
            request = Request(
                request_id=next_id,
                arrival_time=sim.now,
                prompt_tokens=total,
                decode_tokens=int(rng.integers(4, 40)),
                qos=Q2,
                token_ids=ids(total, base),
                session_id=f"s{sid}",
            )
            next_id += 1
            engine.submit_now(request)
            submitted.append(request)
        elif op < 9:
            sim.run(until=sim.now + float(rng.uniform(0.02, 0.4)))
        elif op < 11:
            unfinished = [
                r for r in submitted
                if not r.is_finished and not r.cancelled
            ]
            if unfinished and engine.healthy:
                victim = unfinished[int(rng.integers(len(unfinished)))]
                engine.cancel_request(victim, "property-test")
        else:
            if engine.healthy and engine.kv_cache.used_blocks > 0:
                engine.crash()
                assert engine.prefix_cache.cached_blocks == 0
                assert engine.kv_cache.used_blocks == 0
                engine.recover()
        _tree_invariants(engine)

    sim.run()  # drain everything still in flight
    _tree_invariants(engine)
    cache = engine.prefix_cache
    assert cache.total_refs() == 0, "locks leaked past completion"
    assert cache.locked_requests == []
    # Only unreferenced tree nodes may still hold ledger blocks.
    assert set(engine.kv_cache.holders()) == {
        n for n in engine.kv_cache.holders() if n < 0
    }
    assert engine.kv_cache.used_blocks == cache.cached_blocks
    assert cache.hits > 0, "property workload never exercised reuse"
    assert cache.evictions > 0, "tiny ledger never forced eviction"


#: Event-stream SHA-256 of (workload, scheduler, engine) runs captured
#: from the pre-prefix-cache tree (commit 2ca55ed).  ``kv_reuse="off"``
#: must reproduce these byte-for-byte, forever.
PRE_PR_CHECKSUMS = {
    ("azure", "qoserve"):
        "7cc3dd9693d03557cc59fcb503d18269890201909d2165141c72146880e9c968",
    ("azure", "medha"):
        "a193979fe1481b38ad5c73de4ad0cbc589b29df171e2983fa756cfc26d873e50",
    ("sessions", "qoserve"):
        "f0c14737fd1e85486b5f6b674f3f73e7181a136c02c6cabfa1758cdbadb8e926",
    ("sessions", "medha"):
        "c82a75e73519377e9a74b0c392fe5d5002b5abe2f6ec1bcf590b271043c95305",
}


def _event_checksum(events) -> str:
    digest = hashlib.sha256()
    for event in events:
        digest.update(json.dumps(
            event, sort_keys=True, separators=(",", ":")
        ).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _run_off_mode(requests, scheduler, engine):
    sink = ListSink()
    observer = TracingObserver(TraceRecorder([sink]))
    session = Session(
        ServeConfig(scheduler=scheduler, engine=engine, kv_reuse="off"),
        observer=observer,
    )
    for request in requests:
        session.submit(request.clone_fresh())
    session.drain()
    return sink.events


class TestOffModeByteIdentity:
    @pytest.fixture(scope="class")
    def workloads(self):
        return {
            "azure": list(build_trace(
                AZURE_CODE, qps=3.0, num_requests=60, seed=42
            )),
            "sessions": list(SessionWorkload(
                session_qps=0.5, seed=7
            ).build(25)),
        }

    @pytest.mark.parametrize("scheduler", ["qoserve", "medha"])
    @pytest.mark.parametrize("workload", ["azure", "sessions"])
    def test_matches_pre_pr_trace(self, workloads, workload, scheduler):
        expected = PRE_PR_CHECKSUMS[(workload, scheduler)]
        for engine in sorted(ENGINES):
            events = _run_off_mode(
                workloads[workload], scheduler, engine
            )
            assert _event_checksum(events) == expected, (
                f"kv_reuse='off' diverged from the pre-PR event "
                f"stream ({workload}/{scheduler}/{engine})"
            )


class TestPrefixReuseEndToEnd:
    def test_engines_agree_and_reuse_pays(self):
        trace = list(SessionWorkload(
            AGENT_PROFILE, session_qps=0.5, seed=7
        ).build(15))
        stats = {}
        for engine in sorted(ENGINES):
            session = Session(ServeConfig(
                scheduler="qoserve", engine=engine, kv_reuse="radix"
            ))
            requests = [r.clone_fresh() for r in trace]
            for request in requests:
                session.submit(request)
            session.drain()
            cache = session.engines[0].prefix_cache
            assert cache is not None
            assert cache.total_refs() == 0
            assert all(r.is_finished for r in requests)
            stats[engine] = (
                cache.hits, cache.misses, cache.hit_tokens,
                cache.evictions, session.engines[0].kv_cache.used_blocks,
            )
        assert stats["objects"] == stats["arrays"]
        hits, misses, hit_tokens, _, _ = stats["objects"]
        assert hits > misses  # multi-turn traffic is hit-dominated
        assert hit_tokens > 0

    def test_off_mode_has_no_cache(self):
        session = Session(ServeConfig(kv_reuse="off"))
        assert session.engines[0].prefix_cache is None

    def test_prefill_only_never_builds_cache(self, execution_model):
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model, FCFSScheduler(chunk_size=256),
            ReplicaConfig(kv_reuse="radix", prefill_only=True),
            prefill_sink=lambda request, now: None,
        )
        assert engine.prefix_cache is None

    def test_hit_shrinks_prefill_work(self, execution_model):
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model, FCFSScheduler(chunk_size=256),
            ReplicaConfig(kv_reuse="radix"),
        )
        first = Request(
            request_id=0, arrival_time=0.0, prompt_tokens=512,
            decode_tokens=4, qos=Q2, token_ids=ids(512),
        )
        engine.submit_now(first)
        sim.run()
        assert first.is_finished
        second = Request(
            request_id=1, arrival_time=sim.now, prompt_tokens=512,
            decode_tokens=4, qos=Q2, token_ids=ids(512),
        )
        engine.submit_now(second)
        # Matched at admission: all but the final partial chunk of
        # prefill is already done (cap at prompt_tokens - 1).
        assert second.prefill_done == 496
        sim.run()
        assert second.is_finished
        cache = engine.prefix_cache
        assert cache.hits == 1 and cache.hit_tokens == 496

    def test_config_validation(self):
        with pytest.raises(ValueError, match="kv_reuse"):
            ServeConfig(kv_reuse="lru")
        with pytest.raises(ValueError, match="kv_reuse"):
            ReplicaConfig(kv_reuse="lru")


class TestConversationHelper:
    def test_turns_chain_and_reuse_fires(self):
        session = Session(ServeConfig(kv_reuse="radix"))
        conversation = session.conversation(system_prompt_tokens=64)
        previous = None
        for turn in range(3):
            request = conversation.turn(
                request_id=turn,
                user_tokens=100,
                decode_tokens=8,
                arrival_time=session.now,
            )
            assert request.session_id == conversation.session_id
            assert request.parent_request_id == (
                previous.request_id if previous is not None else None
            )
            if previous is not None:
                assert request.token_ids[: previous.prompt_tokens] == (
                    previous.token_ids
                )
                assert request.prompt_tokens == (
                    previous.prompt_tokens + 8 + 100
                )
            session.submit_now(request)
            session.drain()
            assert request.is_finished
            previous = request
        cache = session.engines[0].prefix_cache
        assert cache.hits == 2  # turns 2 and 3 matched turn 1's path
        assert cache.total_refs() == 0

    def test_conversations_share_system_prompt(self):
        session = Session(ServeConfig(kv_reuse="off"))
        a = session.conversation(system_prompt_tokens=32)
        b = session.conversation(system_prompt_tokens=32)
        ra = a.turn(request_id=0, user_tokens=50, decode_tokens=4)
        rb = b.turn(request_id=1, user_tokens=50, decode_tokens=4)
        assert a.session_id != b.session_id
        assert ra.token_ids[:32] == rb.token_ids[:32]
        assert set(ra.token_ids[32:]).isdisjoint(rb.token_ids[32:])

    def test_rejects_empty_user_turn(self):
        conversation = Session(ServeConfig()).conversation()
        with pytest.raises(ValueError):
            conversation.turn(
                request_id=0, user_tokens=0, decode_tokens=4
            )


class TestSessionsTokenStreams:
    def test_deterministic_and_prefix_extending(self):
        build = lambda: SessionWorkload(
            AGENT_PROFILE, session_qps=0.5, seed=3
        ).build(12)
        first, second = build(), build()
        assert [r.token_ids for r in first] == [
            r.token_ids for r in second
        ]
        for turns in session_turn_index(first).values():
            for early, late in zip(turns, turns[1:]):
                assert late.parent_request_id == early.request_id
                assert late.session_id == early.session_id
                shared = min(len(early.token_ids), len(late.token_ids))
                assert late.token_ids[:shared] == (
                    early.token_ids[:shared]
                )

    def test_shared_system_prompt_across_sessions(self):
        trace = SessionWorkload(
            AGENT_PROFILE, session_qps=0.5, seed=3
        ).build(12)
        openers = [
            turns[0] for turns in session_turn_index(trace).values()
        ]
        assert len(openers) >= 2
        shared = AGENT_PROFILE.shared_prefix_tokens
        reference = openers[0].token_ids[:shared]
        for opener in openers[1:]:
            n = min(shared, len(opener.token_ids))
            assert opener.token_ids[:n] == reference[:n]

    def test_token_ids_match_prompt_length(self):
        trace = SessionWorkload(session_qps=1.0, seed=9).build(10)
        for request in trace:
            assert request.token_ids is not None
            assert len(request.token_ids) == request.prompt_tokens
