"""Unit tests for trace analysis."""

import pytest

from repro.workload.analysis import analyze_trace
from repro.workload.arrivals import PoissonArrivals
from repro.workload.datasets import AZURE_CODE
from repro.workload.tiers import TierAssigner
from repro.workload.trace import Trace, TraceBuilder


@pytest.fixture(scope="module")
def trace():
    return TraceBuilder(
        AZURE_CODE,
        arrivals=PoissonArrivals(3.0),
        tier_assigner=TierAssigner(low_priority_fraction=0.2),
        seed=5,
    ).build(3000)


class TestAnalyzeTrace:
    def test_basic_counts(self, trace):
        stats = analyze_trace(trace)
        assert stats.num_requests == 3000
        assert stats.duration > 0
        assert stats.mean_qps == pytest.approx(3.0, rel=0.1)

    def test_percentiles_match_table2(self, trace):
        stats = analyze_trace(trace)
        assert stats.prompt_percentiles[0.50] == pytest.approx(
            1930, rel=0.15
        )
        assert stats.decode_percentiles[0.50] == pytest.approx(8, abs=4)

    def test_tier_shares_sum_to_one(self, trace):
        stats = analyze_trace(trace)
        assert sum(stats.tier_shares.values()) == pytest.approx(1.0)
        assert set(stats.tier_shares) == {"Q1", "Q2", "Q3"}

    def test_important_share(self, trace):
        stats = analyze_trace(trace)
        assert stats.important_share == pytest.approx(0.8, abs=0.03)

    def test_work_volumes(self, trace):
        stats = analyze_trace(trace)
        assert stats.total_prefill_tokens == sum(
            r.prompt_tokens for r in trace
        )
        assert stats.total_decode_tokens == sum(
            r.decode_tokens for r in trace
        )

    def test_peak_qps_at_least_mean(self, trace):
        stats = analyze_trace(trace)
        assert stats.peak_qps >= stats.mean_qps * 0.9

    def test_render_mentions_key_numbers(self, trace):
        text = analyze_trace(trace).render()
        assert "requests: 3000" in text
        assert "p50" in text
        assert "Q1" in text

    def test_empty_trace(self):
        stats = analyze_trace(Trace(requests=[]))
        assert stats.num_requests == 0
        assert stats.mean_qps == 0.0
