"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import OracleBatchPredictor, cached_forest_predictor
from repro.core.qos import Q1_INTERACTIVE, Q2_RELAXED, Q3_BATCH
from repro.core.request import Request
from repro.perfmodel import A100_80GB, LLAMA3_8B, ExecutionModel
from repro.simcore import Simulator


@pytest.fixture(scope="session")
def execution_model() -> ExecutionModel:
    """Llama3-8B on one A100 — the paper's workhorse deployment."""
    return ExecutionModel(LLAMA3_8B, A100_80GB)


@pytest.fixture(scope="session")
def oracle_predictor(execution_model) -> OracleBatchPredictor:
    return OracleBatchPredictor(execution_model)


@pytest.fixture(scope="session")
def forest_predictor(execution_model):
    """Trained once per test session (a few seconds of CPU)."""
    return cached_forest_predictor(execution_model)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_request(
    request_id: int = 0,
    arrival_time: float = 0.0,
    prompt_tokens: int = 1000,
    decode_tokens: int = 50,
    qos=Q1_INTERACTIVE,
    app_id: str = "test-app",
    important: bool = True,
) -> Request:
    """Request factory with sensible defaults for unit tests."""
    return Request(
        request_id=request_id,
        arrival_time=arrival_time,
        prompt_tokens=prompt_tokens,
        decode_tokens=decode_tokens,
        qos=qos,
        app_id=app_id,
        important=important,
    )


@pytest.fixture
def request_factory():
    return make_request


# Re-export tier presets so tests can import them from one place.
Q1 = Q1_INTERACTIVE
Q2 = Q2_RELAXED
Q3 = Q3_BATCH
