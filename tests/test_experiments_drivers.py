"""Smoke and shape tests for the experiment drivers at tiny scale.

These are not re-runs of the benchmark assertions: they validate the
drivers' mechanics — row schemas, views, window selection, synthetic
trace construction — cheaply enough for the unit suite.
"""

import pytest

from repro.experiments.configs import Scale
from repro.experiments import (
    ablation_extras,
    ext_qos_decode,
    fig04_chunk_tradeoff,
    fig09_chunk_trace,
    fig10_11_load_sweep,
    fig12_13_transient,
    fig15_concurrent_work,
    tab04_cluster_scale,
)

TINY = Scale(num_requests=120, min_duration_s=40.0, seed=7, label="tiny")


class TestFig04:
    def test_rows_and_columns(self):
        result = fig04_chunk_tradeoff.run(TINY, chunks=(128, 512, 2048))
        assert [r["chunk_size"] for r in result.rows] == [128, 512, 2048]
        assert all(r["throughput_tokens_per_s"] > 0 for r in result.rows)

    def test_other_deployments(self):
        result = fig04_chunk_tradeoff.run(
            TINY, chunks=(256, 2048), deployment="llama3-70b"
        )
        assert len(result.rows) == 2


class TestFig09:
    def test_window_prefers_chunk_dynamics(self):
        result = fig09_chunk_trace.run(TINY, qps=2.0, window=50)
        chunks = [r["chunk_size"] for r in result.rows]
        assert chunks  # a window was selected
        assert any(c > 0 for c in chunks)

    def test_record_fields(self):
        result = fig09_chunk_trace.run(TINY, qps=2.0, window=30)
        row = result.rows[0]
        assert {"batch_id", "chunk_size", "exec_time_ms",
                "num_decodes"} <= set(row)


class TestFig10Views:
    def test_views_project_columns(self):
        combined = fig10_11_load_sweep.run(
            TINY, schemes=("fcfs",), loads=(2.0,)
        )
        fig10 = fig10_11_load_sweep.figure10_view(combined)
        fig11 = fig10_11_load_sweep.figure11_view(combined)
        assert "q1_p95_s" in fig10.rows[0]
        assert "viol_long_pct" in fig11.rows[0]
        assert "viol_long_pct" not in fig10.rows[0]
        assert "q1_p95_s" not in fig11.rows[0]


class TestTransient:
    def test_diurnal_trace_has_cycles(self):
        trace = fig12_13_transient.build_diurnal_trace(TINY)
        assert len(trace) == TINY.requests_for(3.5)
        low_priority = sum(1 for r in trace if not r.important)
        assert 0.1 < low_priority / len(trace) < 0.3


class TestFig15:
    def test_synthetic_trace_uniform(self):
        trace = fig15_concurrent_work.synthetic_trace(10, qps=0.5)
        assert all(r.prompt_tokens == 10_000 for r in trace)
        assert all(r.decode_tokens == 500 for r in trace)
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)


class TestTab04:
    def test_silo_allocation_positive(self, execution_model):
        replicas, goodputs = tab04_cluster_scale.silo_allocation(
            execution_model, TINY, per_tier_qps=2.0
        )
        assert set(replicas) == {"Q1", "Q2", "Q3"}
        assert all(v >= 1 for v in replicas.values())
        # The strict tier needs more replicas per QPS than the
        # throughput tiers (small chunk + TTFT bound).
        assert goodputs["Q1"] <= goodputs["Q2"]


class TestExtDecode:
    def test_prefilled_trace_ready_for_decode(self):
        requests = ext_qos_decode.prefilled_trace(30, qps=2.0, seed=1)
        assert all(r.remaining_prefill == 0 for r in requests)
        tiers = {r.qos.name for r in requests}
        assert tiers <= {"QA", "QB"}

    def test_make_pool_modes(self, execution_model):
        from repro.simcore import Simulator

        for mode in ("strict-shared", "partitioned", "qos-shared"):
            pool = ext_qos_decode.make_pool(
                mode, Simulator(), execution_model, 2
            )
            assert hasattr(pool, "accept")
        with pytest.raises(KeyError):
            ext_qos_decode.make_pool(
                "bogus", Simulator(), execution_model, 2
            )


class TestAblationExtras:
    def test_preemption_rows(self):
        result = ablation_extras.run_preemption_ablation(TINY, qps=2.5)
        assert {r["selective_preemption"] for r in result.rows} == {
            "on", "off"
        }

    def test_estimator_rows(self):
        result = ablation_extras.run_estimator_ablation(TINY, qps=2.5)
        assert len(result.rows) == 3
