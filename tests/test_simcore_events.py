"""Unit tests for the event queue primitives."""

import pytest

from repro.simcore.events import Event, EventQueue


class TestEventOrdering:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_broken_by_priority(self):
        q = EventQueue()
        q.push(1.0, lambda: None, priority=5)
        q.push(1.0, lambda: None, priority=1)
        assert q.pop().priority == 1
        assert q.pop().priority == 5

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        assert q.pop() is first
        assert q.pop() is second

    def test_sequence_numbers_strictly_increase(self):
        q = EventQueue()
        events = [q.push(0.0, lambda: None) for _ in range(10)]
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 10


class TestEventQueueBehaviour:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, lambda: None)
        assert q
        assert len(q) == 1

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(2.0, lambda: None)
        first.cancel()
        assert q.pop() is second

    def test_pop_all_cancelled_raises(self):
        q = EventQueue()
        q.push(1.0, lambda: None).cancel()
        with pytest.raises(IndexError):
            q.pop()

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        first.cancel()
        assert q.peek_time() == 2.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), lambda: None)

    def test_event_dataclass_comparison(self):
        a = Event(time=1.0, priority=0, seq=0)
        b = Event(time=1.0, priority=0, seq=1)
        assert a < b


class TestCancellationSemantics:
    """The lazy-deletion contract the fault layer's watchdogs rely on:
    a cancelled event never fires and never stretches the clock."""

    def test_cancelled_event_never_fires(self):
        from repro.simcore import Simulator

        sim = Simulator()
        fired = []
        handle = sim.schedule(5.0, lambda: fired.append("watchdog"))
        sim.schedule(1.0, lambda: fired.append("work"))
        handle.cancel()
        sim.run()
        assert fired == ["work"]
        # The drain clock stops at the last *live* event, not at the
        # cancelled one's timestamp.
        assert sim.now == 1.0

    def test_cancel_from_earlier_callback(self):
        """Cancelling inside a callback that fires before the target —
        exactly how a completion disarms its deadline watchdog."""
        from repro.simcore import Simulator

        sim = Simulator()
        fired = []
        watchdog = sim.schedule(10.0, lambda: fired.append("abandon"))
        sim.schedule(2.0, lambda: watchdog.cancel())
        sim.run()
        assert fired == []
        assert sim.now == 2.0

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        live = q.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled
        assert q.pop() is live

    def test_heap_stays_consistent_after_cancel(self):
        """Cancellation must not reorder or lose the surviving events,
        and lazily-removed entries drop out of the length count."""
        q = EventQueue()
        events = [q.push(float(t), lambda: None) for t in range(10)]
        for e in events[::2]:  # cancel the even-timestamp half
            e.cancel()
        assert len(q) == 10  # lazy: cancelled entries still on heap
        survivors = []
        while q:
            try:
                survivors.append(q.pop().time)
            except IndexError:
                break
        assert survivors == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_peek_time_prunes_cancelled_prefix(self):
        q = EventQueue()
        doomed = [q.push(float(t), lambda: None) for t in range(5)]
        keeper = q.push(99.0, lambda: None)
        for e in doomed:
            e.cancel()
        assert q.peek_time() == 99.0
        # peek_time popped the cancelled prefix off the heap for real.
        assert len(q) == 1
        assert q.pop() is keeper
