"""Unit tests for the event queue primitives."""

import pytest

from repro.simcore.events import Event, EventQueue


class TestEventOrdering:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_broken_by_priority(self):
        q = EventQueue()
        q.push(1.0, lambda: None, priority=5)
        q.push(1.0, lambda: None, priority=1)
        assert q.pop().priority == 1
        assert q.pop().priority == 5

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        assert q.pop() is first
        assert q.pop() is second

    def test_sequence_numbers_strictly_increase(self):
        q = EventQueue()
        events = [q.push(0.0, lambda: None) for _ in range(10)]
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 10


class TestEventQueueBehaviour:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, lambda: None)
        assert q
        assert len(q) == 1

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(2.0, lambda: None)
        first.cancel()
        assert q.pop() is second

    def test_pop_all_cancelled_raises(self):
        q = EventQueue()
        q.push(1.0, lambda: None).cancel()
        with pytest.raises(IndexError):
            q.pop()

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        first.cancel()
        assert q.peek_time() == 2.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), lambda: None)

    def test_event_dataclass_comparison(self):
        a = Event(time=1.0, priority=0, seq=0)
        b = Event(time=1.0, priority=0, seq=1)
        assert a < b
