"""Unit tests for the SLO flight recorder (repro.obs.recorder)."""

import json

import pytest

from repro.experiments.configs import get_execution_model
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.obs import (
    FlightRecorder,
    TraceRecorder,
    TracingObserver,
    read_incidents,
    record_incidents,
)
from repro.workload.datasets import AZURE_CODE
from tests.test_obs_audit import completed, iteration


def noise(ts):
    """A filler event that never triggers anything."""
    return iteration(ts, 0.1, prefill_ids=[])


class TestDeadlineTrigger:
    def test_violation_opens_an_incident(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = FlightRecorder(path, post_context=0)
        recorder.append(noise(0.5))
        recorder.append(iteration(1.0, 0.5, prefill_ids=[7]))
        recorder.append(completed(
            request_id=7, arrival=0.0, scheduled=1.0, first_token=1.5,
            completion=2.0, violated=True,
        ))
        recorder.close()
        [incident] = read_incidents(path)
        assert incident["trigger"] == "deadline_violation"
        assert incident["request_id"] == 7
        assert incident["tier"] == "Q1"
        assert incident["ts"] == 2.0
        # Pre-context is the whole ring, trigger event included.
        assert incident["num_events"] == 3
        assert incident["events"][0]["kind"] == "iteration_scheduled"
        assert recorder.triggered == 1
        assert recorder.incidents_written == 1

    def test_dominant_cause_comes_from_the_auditor(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        record_incidents([
            iteration(1.0, 0.2, prefill_ids=[1]),
            iteration(4.0, 0.2, prefill_ids=[1]),
            completed(arrival=0.0, scheduled=1.0, first_token=4.2,
                      completion=4.5, violated=True),
        ], path)
        [incident] = read_incidents(path)
        assert incident["dominant_cause"] == "chunk_stall"

    def test_post_context_extends_the_window(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = FlightRecorder(path, post_context=2)
        recorder.append(completed(violated=True))
        assert recorder.incidents_written == 0  # still collecting
        recorder.append(noise(3.1))
        recorder.append(noise(3.2))
        assert recorder.incidents_written == 1  # sealed by the 2nd
        recorder.append(noise(3.3))  # after the seal: not included
        recorder.close()
        [incident] = read_incidents(path)
        assert incident["num_events"] == 3
        assert incident["events"][-1]["ts"] == 3.2

    def test_close_seals_open_incidents_early(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = FlightRecorder(path, post_context=100)
        recorder.append(completed(violated=True))
        recorder.append(noise(3.5))
        recorder.close()
        [incident] = read_incidents(path)
        assert incident["num_events"] == 2

    def test_ring_capacity_bounds_pre_context(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = FlightRecorder(path, capacity=3, post_context=0)
        for i in range(10):
            recorder.append(noise(float(i)))
        recorder.append(completed(violated=True))
        recorder.close()
        [incident] = read_incidents(path)
        assert incident["num_events"] == 3


class TestBurnRateTrigger:
    def _recorder(self, path, **kwargs):
        defaults = dict(
            post_context=0,
            burn_window=10.0,
            slo_budget=0.25,
            burn_threshold=1.0,
            min_window_total=3,
        )
        defaults.update(kwargs)
        return FlightRecorder(path, **defaults)

    def test_window_trips_once(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = self._recorder(path)
        # Window [0, 10): 1 violation out of 3 = 1.33x the 25% budget.
        recorder.append(completed(request_id=1, completion=1.0))
        recorder.append(completed(
            request_id=2, completion=2.0, violated=True,
        ))
        recorder.append(completed(request_id=3, completion=3.0))
        recorder.append(completed(request_id=4, completion=4.0))
        recorder.close()
        burn = [
            i for i in read_incidents(path)
            if i["trigger"] == "burn_rate"
        ]
        [incident] = burn  # the 4th completion must not re-trip
        assert incident["ts"] == 3.0
        assert incident["window_start"] == 0.0
        assert incident["window_end"] == 10.0
        assert incident["burn_rate"] == pytest.approx((1 / 3) / 0.25)
        assert incident["dominant_cause"] is not None

    def test_under_threshold_never_trips(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = self._recorder(path, slo_budget=0.9)
        recorder.append(completed(
            request_id=1, completion=1.0, violated=True,
        ))
        recorder.append(completed(request_id=2, completion=2.0))
        recorder.append(completed(request_id=3, completion=3.0))
        recorder.close()
        assert not any(
            i["trigger"] == "burn_rate" for i in read_incidents(path)
        )

    def test_min_window_total_gates_early_windows(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = self._recorder(path, min_window_total=50)
        recorder.append(completed(completion=1.0, violated=True))
        recorder.close()
        kinds = [i["trigger"] for i in read_incidents(path)]
        assert kinds == ["deadline_violation"]


class TestBehaviour:
    def test_no_incidents_no_file(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        count = record_incidents([noise(1.0), completed()], path)
        assert count == 0
        assert not path.exists()

    def test_max_incidents_caps_writes_not_counting(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        recorder = FlightRecorder(
            path, post_context=0, max_incidents=1
        )
        for i in range(3):
            recorder.append(completed(
                request_id=i, completion=float(i + 1), violated=True,
            ))
        recorder.close()
        assert recorder.triggered == 3
        assert recorder.incidents_written == 1
        assert len(read_incidents(path)) == 1

    def test_deterministic_incident_files(self, tmp_path):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=1.5, completion=2.0,
                      violated=True),
            noise(2.5),
        ]
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert record_incidents(events, first) == 1
        assert record_incidents(events, second) == 1
        assert first.read_bytes() == second.read_bytes()

    def test_parameter_validation(self, tmp_path):
        path = tmp_path / "x.jsonl"
        with pytest.raises(ValueError):
            FlightRecorder(path, capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(path, post_context=-1)
        with pytest.raises(ValueError):
            FlightRecorder(path, burn_threshold=0.0)

    def test_read_incidents_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trigger": "x"}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_incidents(path)


class TestEndToEnd:
    def test_overloaded_run_records_incidents(self, tmp_path):
        """An fcfs overload run must leave a readable incident file
        whose windows replay through the span builder."""
        from repro.obs import build_span_trees

        path = tmp_path / "incidents.jsonl"
        execution_model = get_execution_model("llama3-8b")
        trace = build_trace(
            AZURE_CODE, qps=1.0, num_requests=80, seed=11
        ).scaled_arrivals(8.0)
        flight = FlightRecorder(path, capacity=512, post_context=32)
        observer = TracingObserver(TraceRecorder([flight]))
        scheduler = make_scheduler("fcfs", execution_model)
        summary, _ = run_replica_trace(
            execution_model, scheduler, trace, observer=observer
        )
        flight.close()
        assert flight.incidents_written > 0
        incidents = read_incidents(path)
        assert len(incidents) == flight.incidents_written
        for incident in incidents:
            assert incident["trigger"] in {
                "deadline_violation", "burn_rate",
            }
            assert incident["num_events"] > 0
            json.dumps(incident)  # strict JSON all the way down
        # The incident window is a valid trace fragment.
        deadline = next(
            i for i in incidents
            if i["trigger"] == "deadline_violation"
        )
        trees = build_span_trees(deadline["events"])
        assert any(
            t.request_id == deadline["request_id"] for t in trees
        )
