"""Property-based tests over whole simulations.

Random small workloads are run end-to-end through random scheduler
choices, and system-level invariants (conservation, causality, KV
hygiene, TBT bounds) are asserted on the result.  This is the
failure-injection layer: weird token counts, bursty arrivals and tiny
KV caches all flow through the same assertions.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.qos import DEFAULT_TIERS
from repro.core.request import Request
from repro.engine import ReplicaConfig, ReplicaEngine
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import make_scheduler
from repro.simcore import Simulator

EM = get_execution_model("llama3-8b")

request_strategy = st.builds(
    Request,
    request_id=st.integers(0, 10_000),
    arrival_time=st.floats(0.0, 60.0, allow_nan=False),
    prompt_tokens=st.integers(1, 6000),
    decode_tokens=st.integers(1, 300),
    qos=st.sampled_from(DEFAULT_TIERS),
    app_id=st.sampled_from(["a", "b"]),
    important=st.booleans(),
)


def unique_ids(requests):
    seen = {}
    for i, r in enumerate(requests):
        seen[i] = r
        r.request_id = i
    return requests


@given(
    requests=st.lists(request_strategy, min_size=1, max_size=25),
    kind=st.sampled_from(["fcfs", "sjf", "srpf", "edf", "qoserve-oracle"]),
)
@settings(max_examples=40, deadline=None)
def test_simulation_invariants(requests, kind):
    requests = unique_ids(requests)
    simulator = Simulator()
    engine = ReplicaEngine(
        simulator, EM, make_scheduler(kind, EM), ReplicaConfig()
    )
    for r in requests:
        engine.submit(r)
    simulator.run(max_events=2_000_000)

    # Conservation: every request fully served, exactly once.
    assert len(engine.completed) == len(requests)
    for r in requests:
        assert r.is_finished
        assert r.decoded == r.decode_tokens
        assert r.prefill_done == r.prefill_target

    # Causality of recorded timestamps.
    for r in requests:
        assert r.scheduled_first_time >= r.arrival_time - 1e-9
        assert r.first_token_time >= r.scheduled_first_time - 1e-9
        assert (r.completion_time or 0) >= r.first_token_time - 1e-9

    # KV hygiene: nothing leaks after the drain.
    assert engine.kv_cache.used_blocks == 0

    # The engine never does more iterations than tokens processed.
    total_tokens = sum(r.prefill_target + r.decode_tokens
                      for r in requests)
    assert engine.iterations_run <= total_tokens


@given(
    requests=st.lists(request_strategy, min_size=1, max_size=15),
)
@settings(max_examples=25, deadline=None)
def test_fixed_chunk_bounds_iteration_latency(requests):
    """With a 256-token budget, no iteration may exceed the latency of
    a maximal 256-token batch plus decode costs — i.e. decode gaps stay
    bounded regardless of workload shape."""
    requests = unique_ids(requests)
    simulator = Simulator()
    engine = ReplicaEngine(
        simulator, EM, make_scheduler("edf", EM, chunk_size=256),
        ReplicaConfig(record_iterations=True),
    )
    for r in requests:
        engine.submit(r)
    simulator.run(max_events=2_000_000)
    for record in engine.iteration_records:
        assert record.prefill_tokens + record.num_decodes <= 256
        assert record.exec_time < 0.25  # generous static bound


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_trace_reproducibility(seed):
    """Same seed, same simulation outcome, bit-for-bit."""
    from repro.experiments.runner import build_trace, run_replica_trace
    from repro.workload.datasets import AZURE_CONV

    def once():
        trace = build_trace(AZURE_CONV, qps=3.0, num_requests=30,
                            seed=seed)
        summary, engine = run_replica_trace(
            EM, make_scheduler("qoserve-oracle", EM), trace
        )
        return [
            (r.request_id, r.first_token_time, r.completion_time)
            for r in engine.submitted
        ]

    assert once() == once()
