"""Unit tests for the PolyServe capacity planner."""

import pytest

from repro.cluster.polyserve import PolyServePlanner


@pytest.fixture
def planner():
    return PolyServePlanner({"Q1": 2.0, "Q2": 4.0}, tp_degree=1)


class TestPlanning:
    def test_even_mix(self, planner):
        plan = planner.plan(40.0, {"Q1": 0.5, "Q2": 0.5})
        assert plan.replicas_per_class == {"Q1": 10, "Q2": 5}
        assert plan.gpus == 15
        assert plan.per_class_load_qps == {"Q1": 20.0, "Q2": 20.0}

    def test_rounding_up_per_class(self, planner):
        # 10.1 QPS at 2.0 goodput -> 6 replicas, not 5.05.
        plan = planner.plan(20.2, {"Q1": 0.5, "Q2": 0.5})
        assert plan.replicas_per_class["Q1"] == 6

    def test_isolation_penalty_vs_pooled(self, planner):
        """The structural cost Figure 15b shows: per-class ceilings
        sum to at least the pooled ceiling, often more."""
        import math

        plan = planner.plan(21.0, {"Q1": 0.5, "Q2": 0.5})
        # A hypothetical pooled deployment at the *weighted* goodput.
        pooled = math.ceil(
            21.0 / (0.5 * 2.0 + 0.5 * 4.0)
        )
        assert plan.gpus >= pooled

    def test_zero_share_class_scales_to_nothing(self, planner):
        plan = planner.plan(10.0, {"Q1": 1.0, "Q2": 0.0})
        assert plan.replicas_per_class["Q2"] == 0
        assert plan.gpus == 5

    def test_tp_degree_multiplies_gpus(self):
        planner = PolyServePlanner({"Q1": 2.0}, tp_degree=4)
        plan = planner.plan(4.0, {"Q1": 1.0})
        assert plan.replicas_per_class["Q1"] == 2
        assert plan.gpus == 8

    def test_zero_load(self, planner):
        plan = planner.plan(0.0, {"Q1": 0.5, "Q2": 0.5})
        assert plan.gpus == 0


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PolyServePlanner({})

    def test_rejects_bad_goodput(self):
        with pytest.raises(ValueError):
            PolyServePlanner({"Q1": 0.0})

    def test_rejects_unknown_class(self, planner):
        with pytest.raises(KeyError):
            planner.plan(10.0, {"Q9": 1.0})

    def test_rejects_unnormalized_shares(self, planner):
        with pytest.raises(ValueError):
            planner.plan(10.0, {"Q1": 0.7, "Q2": 0.7})

    def test_rejects_negative_load(self, planner):
        with pytest.raises(ValueError):
            planner.plan(-1.0, {"Q1": 1.0})
