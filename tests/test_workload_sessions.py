"""Unit tests for the multi-turn session workload generator."""

import numpy as np
import pytest

from repro.experiments.configs import get_execution_model
from repro.experiments.runner import make_scheduler, run_replica_trace
from repro.workload.sessions import (
    SessionProfile,
    SessionWorkload,
    session_turn_index,
)


@pytest.fixture(scope="module")
def trace():
    return SessionWorkload(session_qps=0.5, seed=7).build(120)


class TestStructure:
    def test_sorted_arrivals(self, trace):
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)

    def test_sessions_grouped(self, trace):
        sessions = session_turn_index(trace)
        assert len(sessions) == 120
        assert sum(len(t) for t in sessions.values()) == len(trace)

    def test_context_grows_within_session(self, trace):
        sessions = session_turn_index(trace)
        grew = checked = 0
        for turns in sessions.values():
            for a, b in zip(turns, turns[1:]):
                checked += 1
                if b.prompt_tokens > a.prompt_tokens:
                    grew += 1
                # Never shrinks (clipping can only flatten).
                assert b.prompt_tokens >= a.prompt_tokens
        assert checked > 0
        assert grew / checked > 0.9

    def test_context_window_respected(self):
        profile = SessionProfile(max_context=4096, mean_turns=12.0)
        trace = SessionWorkload(profile, session_qps=1.0, seed=1).build(40)
        assert max(r.prompt_tokens for r in trace) <= 4096

    def test_mean_turns_roughly_matches(self):
        profile = SessionProfile(mean_turns=5.0)
        trace = SessionWorkload(profile, session_qps=1.0, seed=3).build(500)
        sessions = session_turn_index(trace)
        mean = np.mean([len(t) for t in sessions.values()])
        assert mean == pytest.approx(5.0, rel=0.2)

    def test_turns_spaced_by_think_time(self, trace):
        sessions = session_turn_index(trace)
        gaps = [
            b.arrival_time - a.arrival_time
            for turns in sessions.values()
            for a, b in zip(turns, turns[1:])
        ]
        if gaps:
            # Think 20 s mean + 5 s service estimate.
            assert np.mean(gaps) == pytest.approx(25.0, rel=0.3)

    def test_deterministic(self):
        a = SessionWorkload(session_qps=1.0, seed=9).build(30)
        b = SessionWorkload(session_qps=1.0, seed=9).build(30)
        assert [r.prompt_tokens for r in a] == [r.prompt_tokens for r in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionWorkload(session_qps=0.0)
        with pytest.raises(ValueError):
            SessionWorkload().build(0)


class TestSimulation:
    def test_sessions_serve_end_to_end(self):
        em = get_execution_model("llama3-8b")
        trace = SessionWorkload(session_qps=0.3, seed=5).build(40)
        summary, _ = run_replica_trace(
            em, make_scheduler("qoserve-oracle", em), trace.fresh_copy()
        )
        assert summary.finished == len(trace)

    def test_decode_estimator_learns_per_session_app(self):
        """Each session is its own app id, so the history estimator
        keys per session — late turns inherit earlier turns' decode
        statistics."""
        from repro.core.decode_estimator import HistoryDecodeEstimator

        trace = SessionWorkload(
            SessionProfile(mean_turns=8.0), session_qps=1.0, seed=6
        ).build(30)
        estimator = HistoryDecodeEstimator(min_history=2)
        sessions = session_turn_index(trace)
        long_session = max(sessions.values(), key=len)
        for turn in long_session[:4]:
            estimator.observe(turn)
        estimate = estimator.estimate(long_session[-1])
        observed_mean = np.mean(
            [t.decode_tokens for t in long_session[:4]]
        )
        assert estimate >= observed_mean
