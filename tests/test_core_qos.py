"""Unit tests for QoS classes and deadline arithmetic (Eqs. 1-3)."""

import pytest

from repro.core.qos import (
    DEFAULT_TIERS,
    Q1_INTERACTIVE,
    Q2_RELAXED,
    Q3_BATCH,
    QoSClass,
    QoSSpec,
)


class TestTable3Presets:
    def test_q1_is_interactive(self):
        assert Q1_INTERACTIVE.is_interactive
        assert Q1_INTERACTIVE.ttft_slo == 6.0
        assert Q1_INTERACTIVE.tbt_slo == 0.050

    def test_q2_q3_non_interactive(self):
        assert not Q2_RELAXED.is_interactive
        assert not Q3_BATCH.is_interactive
        assert Q2_RELAXED.ttlt_slo == 600.0
        assert Q3_BATCH.ttlt_slo == 1800.0

    def test_default_tiers_order(self):
        assert tuple(t.name for t in DEFAULT_TIERS) == ("Q1", "Q2", "Q3")


class TestDeadlines:
    def test_eq1_first_token_deadline(self):
        # D_first = t_arrival + SLO_TTFT
        assert Q1_INTERACTIVE.first_token_deadline(10.0) == 16.0

    def test_eq2_token_deadlines(self):
        # D_n = t_arrival + SLO_TTFT + (n-1) * SLO_TBT
        assert Q1_INTERACTIVE.token_deadline(10.0, 1) == 16.0
        assert Q1_INTERACTIVE.token_deadline(10.0, 2) == pytest.approx(16.05)
        assert Q1_INTERACTIVE.token_deadline(10.0, 11) == pytest.approx(16.5)

    def test_eq3_total_deadline(self):
        # D_total = t_arrival + SLO_TTLT, independent of token count
        assert Q2_RELAXED.token_deadline(10.0, 1) == 610.0
        assert Q2_RELAXED.token_deadline(10.0, 500) == 610.0
        assert Q2_RELAXED.total_deadline(10.0, 500) == 610.0

    def test_non_interactive_first_token_is_ttlt(self):
        assert Q3_BATCH.first_token_deadline(0.0) == 1800.0

    def test_interactive_total_deadline_uses_token_count(self):
        d = Q1_INTERACTIVE.total_deadline(0.0, 100)
        assert d == pytest.approx(6.0 + 99 * 0.050)

    def test_token_index_one_based(self):
        with pytest.raises(ValueError):
            Q1_INTERACTIVE.token_deadline(0.0, 0)


class TestValidation:
    def test_interactive_requires_ttft_and_tbt(self):
        with pytest.raises(ValueError):
            QoSSpec("bad", QoSClass.INTERACTIVE, ttft_slo=1.0)
        with pytest.raises(ValueError):
            QoSSpec("bad", QoSClass.INTERACTIVE, tbt_slo=0.05)

    def test_non_interactive_requires_ttlt(self):
        with pytest.raises(ValueError):
            QoSSpec("bad", QoSClass.NON_INTERACTIVE)

    def test_positive_slos(self):
        with pytest.raises(ValueError):
            QoSSpec("bad", QoSClass.INTERACTIVE, ttft_slo=0.0, tbt_slo=0.05)
        with pytest.raises(ValueError):
            QoSSpec("bad", QoSClass.NON_INTERACTIVE, ttlt_slo=-5.0)

    def test_custom_slos_within_class(self):
        """Section 3.2: applications specify custom targets per class."""
        fast = QoSSpec(
            "fast-chat", QoSClass.INTERACTIVE, ttft_slo=3.0, tbt_slo=0.02
        )
        assert fast.first_token_deadline(1.0) == 4.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Q1_INTERACTIVE.ttft_slo = 1.0
