"""Unit tests for trace assembly and serialization."""

import numpy as np
import pytest

from repro.workload.arrivals import PoissonArrivals
from repro.workload.datasets import AZURE_CODE, AZURE_CONV
from repro.workload.tiers import TierAssigner
from repro.workload.trace import Trace, TraceBuilder


def build(n=200, qps=2.0, seed=0, dataset=AZURE_CODE):
    return TraceBuilder(
        dataset,
        arrivals=PoissonArrivals(qps),
        tier_assigner=TierAssigner(low_priority_fraction=0.2),
        seed=seed,
    ).build(n)


class TestBuilder:
    def test_builds_requested_count(self):
        assert len(build(123)) == 123

    def test_sorted_by_arrival(self):
        trace = build(300)
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)

    def test_deterministic_given_seed(self):
        a, b = build(seed=5), build(seed=5)
        for ra, rb in zip(a, b):
            assert ra.prompt_tokens == rb.prompt_tokens
            assert ra.arrival_time == rb.arrival_time
            assert ra.qos.name == rb.qos.name

    def test_different_seeds_differ(self):
        a, b = build(seed=1), build(seed=2)
        assert any(
            ra.prompt_tokens != rb.prompt_tokens for ra, rb in zip(a, b)
        )

    def test_tier_fields_consistent(self):
        for r in build(200):
            if r.qos.name == "Q1":
                assert r.app_id == "chat"
                assert r.is_interactive

    def test_unique_ids(self):
        trace = build(200)
        assert len({r.request_id for r in trace}) == 200

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceBuilder(AZURE_CODE).build(0)


class TestTraceOperations:
    def test_duration(self):
        trace = build(100, qps=2.0)
        expected = trace[len(trace) - 1].arrival_time - trace[0].arrival_time
        assert trace.duration == pytest.approx(expected)

    def test_fresh_copy_resets_state(self):
        trace = build(10)
        trace[0].prefill_done = 50
        fresh = trace.fresh_copy()
        assert fresh[0].prefill_done == 0
        assert fresh[0].prompt_tokens == trace[0].prompt_tokens

    def test_scaled_arrivals_divides_gaps(self):
        trace = build(50, qps=1.0)
        scaled = trace.scaled_arrivals(2.0)
        for original, faster in zip(trace, scaled):
            assert faster.arrival_time == pytest.approx(
                original.arrival_time / 2.0
            )
            assert faster.prompt_tokens == original.prompt_tokens

    def test_scaled_arrivals_validation(self):
        with pytest.raises(ValueError):
            build(10).scaled_arrivals(0.0)

    def test_indexing_and_iteration(self):
        trace = build(5)
        assert trace[0] is list(iter(trace))[0]


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        trace = build(50, dataset=AZURE_CONV)
        path = tmp_path / "trace.json"
        trace.to_json(path)
        loaded = Trace.from_json(path)
        assert len(loaded) == len(trace)
        assert loaded.dataset_name == trace.dataset_name
        for a, b in zip(trace, loaded):
            assert a.request_id == b.request_id
            assert a.arrival_time == b.arrival_time
            assert a.prompt_tokens == b.prompt_tokens
            assert a.decode_tokens == b.decode_tokens
            assert a.qos == b.qos
            assert a.important == b.important

    def test_loaded_qos_objects_shared(self, tmp_path):
        trace = build(50)
        path = tmp_path / "trace.json"
        trace.to_json(path)
        loaded = Trace.from_json(path)
        q1_specs = {
            id(r.qos) for r in loaded if r.qos.name == "Q1"
        }
        assert len(q1_specs) == 1  # cache dedupes identical specs
