"""Unit tests for tier assignment and workload composition."""

import numpy as np
import pytest

from repro.core.qos import Q1_INTERACTIVE
from repro.workload.tiers import TierAssigner, TierMix


class TestTierMix:
    def test_equal_thirds(self):
        mix = TierMix.equal_thirds()
        assert np.allclose(mix.probabilities, [1 / 3] * 3)

    def test_interactive_heavy(self):
        mix = TierMix.interactive_heavy()
        assert np.allclose(mix.probabilities, [0.70, 0.15, 0.15])

    def test_batch_heavy(self):
        mix = TierMix.batch_heavy()
        assert np.allclose(mix.probabilities, [0.15, 0.15, 0.70])

    def test_weights_normalized(self):
        mix = TierMix(weights=(2.0, 2.0, 4.0))
        assert np.allclose(mix.probabilities, [0.25, 0.25, 0.5])

    def test_custom_single_tier(self):
        mix = TierMix(
            tiers=(Q1_INTERACTIVE,), weights=(1.0,), app_names=("chat",)
        )
        assert mix.probabilities.tolist() == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TierMix(weights=(1.0,))  # length mismatch with 3 tiers
        with pytest.raises(ValueError):
            TierMix(weights=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            TierMix(weights=(-1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            TierMix(tiers=(), weights=(), app_names=())


class TestTierAssigner:
    def test_composition_realized(self, rng):
        assigner = TierAssigner(TierMix(weights=(0.7, 0.15, 0.15)))
        tiers, _ = assigner.assign(rng, 20_000)
        counts = np.bincount(tiers, minlength=3) / 20_000
        assert counts[0] == pytest.approx(0.7, abs=0.02)
        assert counts[1] == pytest.approx(0.15, abs=0.02)

    def test_low_priority_fraction(self, rng):
        assigner = TierAssigner(low_priority_fraction=0.2)
        _, important = assigner.assign(rng, 20_000)
        assert (~important).mean() == pytest.approx(0.2, abs=0.02)

    def test_default_all_important(self, rng):
        assigner = TierAssigner()
        _, important = assigner.assign(rng, 1000)
        assert important.all()

    def test_accessors(self):
        assigner = TierAssigner()
        assert assigner.tier(0).name == "Q1"
        assert assigner.app_name(0) == "chat"
        assert assigner.app_name(2) == "email-insights"

    def test_validation(self):
        with pytest.raises(ValueError):
            TierAssigner(low_priority_fraction=1.5)
