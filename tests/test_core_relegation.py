"""Unit tests for the violation checker and eager relegation."""

import pytest

from repro.core.decode_estimator import OracleDecodeEstimator
from repro.core.relegation import RelegationPolicy, ViolationChecker
from tests.conftest import Q1, Q2, make_request


@pytest.fixture
def checker():
    # 1 ms per prefill token, 30 ms per decode token: round numbers.
    return ViolationChecker(
        seconds_per_prefill_token=1e-3,
        seconds_per_decode_token=30e-3,
        decode_estimator=OracleDecodeEstimator(),
    )


@pytest.fixture
def policy(checker):
    return RelegationPolicy(checker, use_hints=True)


class TestViolationChecker:
    def test_prefill_service_time(self, checker):
        r = make_request(prompt_tokens=2000)
        assert checker.prefill_service_time(r) == pytest.approx(2.0)
        r.prefill_done = 1000
        assert checker.prefill_service_time(r) == pytest.approx(1.0)

    def test_decode_service_time(self, checker):
        r = make_request(decode_tokens=100)
        assert checker.decode_service_time(r) == pytest.approx(3.0)

    def test_interactive_slack(self, checker):
        r = make_request(prompt_tokens=2000, qos=Q1)
        # deadline 6.0, at t=1: 5 s left minus 2 s service = 3 s slack.
        assert checker.deadline_slack(r, 1.0) == pytest.approx(3.0)

    def test_non_interactive_slack_includes_decode(self, checker):
        r = make_request(prompt_tokens=1000, decode_tokens=100, qos=Q2)
        # 600 - 0 - (1.0 + 3.0) = 596.
        assert checker.deadline_slack(r, 0.0) == pytest.approx(596.0)

    def test_will_violate_with_queue_delay(self, checker):
        r = make_request(prompt_tokens=2000, qos=Q1)
        assert not checker.will_violate(r, 1.0, queue_delay=2.9)
        assert checker.will_violate(r, 1.0, queue_delay=3.1)

    def test_hopeless_request_negative_slack(self, checker):
        r = make_request(prompt_tokens=2000, qos=Q1)
        assert checker.deadline_slack(r, 5.0) < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ViolationChecker(seconds_per_prefill_token=0.0)


def queued(rid, prompt=1000, qos=Q1, arrival=0.0, important=True):
    return make_request(
        request_id=rid, arrival_time=arrival, prompt_tokens=prompt,
        qos=qos, important=important,
    )


class TestRelegationPolicy:
    def test_feasible_queue_untouched(self, policy):
        queue = [queued(i) for i in range(3)]
        plan = policy.plan(queue, now=0.0)
        assert plan.to_relegate == []
        assert plan.scanned == 3

    def test_hopeless_important_request_relegated(self, policy):
        # 7 s of service against a 6 s TTFT deadline: unreachable.
        queue = [queued(0, prompt=7000)]
        plan = policy.plan(queue, now=0.0)
        assert plan.to_relegate == queue

    def test_low_priority_victim_saves_important(self, policy):
        # Two 3-second jobs ahead of an important one whose slack is
        # 2 s: without a demotion the third misses its deadline.
        free = queued(0, prompt=3000, important=False)
        free2 = queued(1, prompt=3000, important=False)
        vip = queued(2, prompt=4000, important=True)
        plan = policy.plan([free, free2, vip], now=0.0)
        relegated_ids = {r.request_id for r in plan.to_relegate}
        assert relegated_ids & {0, 1}
        assert 2 not in relegated_ids
        assert plan.important_saved == 1

    def test_important_never_sacrificed_for_low_priority(self, policy):
        vip = queued(0, prompt=3000, important=True)
        free = queued(1, prompt=4000, important=False)
        # free misses (3 s queue + 4 s service > 6 s): it is demoted,
        # the important one ahead of it is not.
        plan = policy.plan([vip, free], now=0.0)
        assert [r.request_id for r in plan.to_relegate] == [1]

    def test_no_hints_mode_keeps_low_priority(self, checker):
        policy = RelegationPolicy(checker, use_hints=False)
        free = queued(0, prompt=3000, important=False)
        free2 = queued(1, prompt=3000, important=False)
        vip = queued(2, prompt=4000, important=True)
        plan = policy.plan([free, free2, vip], now=0.0)
        # Without hints nobody is pre-emptively demoted; only requests
        # whose own deadline is unreachable are, and none is here.
        assert plan.to_relegate == []

    def test_minimal_victim_set(self, policy):
        """Only as many low-priority requests as needed are demoted."""
        frees = [queued(i, prompt=1000, important=False) for i in range(4)]
        vip = queued(9, prompt=2500, important=True)
        # Queue delay 4 s + 2.5 s service > 6 s: needs ~0.5 s freed,
        # i.e. a single 1-second victim suffices.
        plan = policy.plan(frees + [vip], now=0.0)
        assert len(plan.to_relegate) == 1
        assert not plan.to_relegate[0].important

    def test_largest_victims_first(self, policy):
        small = queued(0, prompt=500, important=False)
        big = queued(1, prompt=3000, important=False)
        vip = queued(2, prompt=3000, important=True)
        plan = policy.plan([small, big, vip], now=0.0)
        assert [r.request_id for r in plan.to_relegate] == [1]

    def test_max_scan_bounds_work(self, checker):
        policy = RelegationPolicy(checker, max_scan=5)
        queue = [queued(i, prompt=7000) for i in range(20)]
        plan = policy.plan(queue, now=0.0)
        assert plan.scanned == 5

    def test_non_interactive_uses_ttlt(self, policy):
        # 300 s of queue ahead; a Q2 job with 600 s TTLT still fits.
        blocker = queued(0, prompt=4000, qos=Q2)
        blocker.prefill_done = 0
        ni = queued(1, prompt=2000, qos=Q2)
        plan = policy.plan([blocker, ni], now=0.0)
        assert plan.to_relegate == []
