"""Tests for the parallel fan-out (pmap) and the disk run cache."""

import json

import pytest

from repro.experiments.cache import RunCache, cached_cell
from repro.experiments.configs import Scale
from repro.experiments.parallel import (
    ParallelConfig,
    get_parallel_config,
    pmap,
    resolve_jobs,
    set_parallel_config,
)


def _square(task):
    """Module-level so it pickles across the process boundary."""
    return task * task


def _tagged(task):
    import os

    return (task, os.getpid())


@pytest.fixture(autouse=True)
def _reset_config():
    """Each test starts from the hermetic default config."""
    set_parallel_config(ParallelConfig())
    yield
    set_parallel_config(ParallelConfig())


class TestPmap:
    def test_serial_path(self):
        assert pmap(_square, [3, 1, 4, 1, 5], jobs=1) == [9, 1, 16, 1, 25]

    def test_parallel_preserves_order(self):
        tasks = list(range(12))
        assert pmap(_square, tasks, jobs=2) == [t * t for t in tasks]

    def test_parallel_equals_serial(self):
        tasks = [7, 2, 9, 4]
        assert pmap(_square, tasks, jobs=3) == pmap(_square, tasks, jobs=1)

    def test_single_task_stays_serial(self):
        import os

        [(task, pid)] = pmap(_tagged, [5], jobs=4)
        assert task == 5
        assert pid == os.getpid()  # no pool spun up for one task

    def test_empty(self):
        assert pmap(_square, [], jobs=4) == []

    def test_jobs_none_reads_config(self):
        set_parallel_config(ParallelConfig(jobs=2))
        assert resolve_jobs(None) == 2
        assert resolve_jobs(5) == 5  # explicit argument wins
        assert resolve_jobs(0) == 1  # floored at serial

    def test_config_roundtrip(self, tmp_path):
        config = ParallelConfig(jobs=3, cache_dir=tmp_path)
        set_parallel_config(config)
        assert get_parallel_config() is config


class TestRunCache:
    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache.key(figure="f", qps=2.0, seed=42)
        assert cache.get(key) is None
        cache.put(key, {"rows": [1.5, 2.5]})
        assert cache.get(key) == {"rows": [1.5, 2.5]}

    def test_float_exactness(self, tmp_path):
        """JSON round-trips float64 exactly (repr-based)."""
        cache = RunCache(tmp_path)
        value = 0.1 + 0.2  # not representable prettily
        cache.put("k" * 64, {"v": value})
        assert cache.get("k" * 64)["v"] == value

    def test_key_sensitivity(self):
        base = RunCache.key(figure="f", qps=2.0, seed=42)
        assert RunCache.key(figure="f", qps=2.5, seed=42) != base
        assert RunCache.key(figure="g", qps=2.0, seed=42) != base
        # Order-insensitive: same parts, any order, same key.
        assert RunCache.key(seed=42, qps=2.0, figure="f") == base

    def test_hit_skips_compute(self, tmp_path):
        cache = RunCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"value": 7}

        first = cache.cached(compute, cell="a")
        second = cache.cached(compute, cell="a")
        assert first == second == {"value": 7}
        assert len(calls) == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_recomputes(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache.key(cell="x")
        cache.put(key, {"v": 1})
        cache._path(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.cached(lambda: {"v": 2}, cell="x") == {"v": 2}

    def test_cached_cell_disabled_by_default(self, tmp_path):
        """No --cache-dir: every call recomputes (hermetic default)."""
        calls = []

        def compute():
            calls.append(1)
            return 3

        assert cached_cell(compute, cell="y") == 3
        assert cached_cell(compute, cell="y") == 3
        assert len(calls) == 2

    def test_cached_cell_uses_config_dir(self, tmp_path):
        set_parallel_config(ParallelConfig(cache_dir=tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return {"v": 9}

        assert cached_cell(compute, cell="z") == {"v": 9}
        assert cached_cell(compute, cell="z") == {"v": 9}
        assert len(calls) == 1
        assert list(tmp_path.rglob("*.json"))  # entry actually on disk


TINY = Scale(num_requests=30, min_duration_s=0.0, seed=42, label="tiny")


class TestSweepDeterminism:
    """ISSUE acceptance: serial and parallel sweeps are byte-identical."""

    def test_fig10_11_serial_vs_parallel(self, forest_predictor):
        from repro.experiments import fig10_11_load_sweep as sweep

        kwargs = dict(schemes=("fcfs", "qoserve"), loads=(2.0, 3.0))
        serial = sweep.run(TINY, jobs=1, **kwargs)
        parallel = sweep.run(TINY, jobs=4, **kwargs)
        encode = lambda r: json.dumps(r.rows, sort_keys=True)  # noqa: E731
        assert encode(parallel) == encode(serial)
        assert parallel.render() == serial.render()

    def test_fig10_11_cache_hit_identical(self, forest_predictor, tmp_path):
        from repro.experiments import fig10_11_load_sweep as sweep

        kwargs = dict(schemes=("qoserve",), loads=(2.0,))
        cold = sweep.run(TINY, jobs=1, **kwargs)
        set_parallel_config(ParallelConfig(cache_dir=tmp_path))
        miss = sweep.run(TINY, jobs=1, **kwargs)
        hit = sweep.run(TINY, jobs=1, **kwargs)
        encode = lambda r: json.dumps(r.rows, sort_keys=True)  # noqa: E731
        assert encode(miss) == encode(cold)
        assert encode(hit) == encode(cold)
