"""Unit tests for the reproduction-report generator."""

from repro.experiments.configs import Scale
from repro.experiments.report import generate_report, write_report
from repro.experiments.result import ExperimentResult

TINY = Scale(num_requests=60, min_duration_s=20.0, seed=1, label="tiny")


def fake_registry():
    def run_ok(scale):
        result = ExperimentResult("fake-fig", "demo rows")
        result.rows = [
            {"scheme": "A", "qps": 1.0, "metric": 2.0},
            {"scheme": "A", "qps": 2.0, "metric": 4.0},
        ]
        return [result]

    return {"fake": ("a fake experiment", run_ok)}


class TestGenerateReport:
    def test_contains_tables_and_chart(self):
        text = generate_report(
            fake_registry(), TINY,
            sections=(("fake", "metric"),), scale_label="tiny",
        )
        assert "# QoServe reproduction report" in text
        assert "fake-fig" in text
        assert "metric vs qps" in text  # the chart header

    def test_chart_skipped_for_missing_column(self):
        text = generate_report(
            fake_registry(), TINY,
            sections=(("fake", "nonexistent"),),
        )
        assert "fake-fig" in text
        assert "nonexistent vs" not in text

    def test_unknown_section_noted(self):
        text = generate_report(
            fake_registry(), TINY, sections=(("bogus", None),)
        )
        assert "unknown experiment" in text

    def test_write_report(self, tmp_path):
        path = write_report(
            fake_registry(), TINY, tmp_path / "r.md",
            sections=(("fake", None),),
        )
        assert path.read_text().startswith("# QoServe")


class TestRealRegistryIntegration:
    def test_fig04_section_end_to_end(self):
        from repro.cli import _registry

        text = generate_report(
            _registry(), TINY,
            sections=(("fig04", "throughput_tokens_per_s"),),
            scale_label="tiny",
        )
        assert "figure-04" in text
        assert "chunk_size" in text
