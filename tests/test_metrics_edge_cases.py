"""Edge-case coverage for the metrics layer."""

import math

import pytest

from repro.metrics.latency import latency_percentiles, rolling_percentile
from repro.metrics.slo import violation_report
from repro.metrics.summary import summarize_run
from tests.conftest import Q1, Q2, make_request


def served(rid, arrival=0.0, ttft=1.0, qos=Q1, decode_tokens=2,
           important=True, prompt=500):
    r = make_request(request_id=rid, arrival_time=arrival,
                     prompt_tokens=prompt, decode_tokens=decode_tokens,
                     qos=qos, important=important)
    r.scheduled_first_time = arrival + ttft / 2
    r.prefill_done = prompt
    for i in range(decode_tokens):
        r.record_output_token(arrival + ttft + 0.02 * i)
    return r


class TestPercentileEdges:
    def test_single_request(self):
        pcts = latency_percentiles([served(1, ttft=2.0)], (0.5, 0.99))
        assert pcts[0.5] == pytest.approx(2.0)
        assert pcts[0.99] == pytest.approx(2.0)

    def test_quantile_zero(self):
        requests = [served(i, ttft=float(i + 1)) for i in range(4)]
        pcts = latency_percentiles(requests, (0.0,))
        assert pcts[0.0] == pytest.approx(1.0)

    def test_rolling_with_step_smaller_than_window(self):
        requests = [served(i, arrival=float(i), ttft=1.0)
                    for i in range(60)]
        import numpy as np

        centers, series = rolling_percentile(
            requests, 0.9, window=20.0, step=5.0
        )
        assert len(centers) > 8
        finite = series[~np.isnan(series)]
        assert np.allclose(finite, 1.0)


class TestViolationEdges:
    def test_all_same_prompt_length_split(self):
        """With identical prompts, the 'long' bucket is everyone at
        the threshold — the split must not crash or NaN."""
        requests = [served(i, prompt=1000) for i in range(10)]
        report = violation_report(requests)
        assert not math.isnan(report.long_pct)
        assert report.long_threshold == 1000

    def test_all_low_priority(self):
        requests = [served(i, important=False) for i in range(5)]
        report = violation_report(requests)
        assert math.isnan(report.important_pct)
        assert report.low_priority_pct == 0.0

    def test_single_tier_only(self):
        requests = [served(i, qos=Q2, ttft=10.0) for i in range(5)]
        report = violation_report(requests)
        assert set(report.per_tier_pct) == {"Q2"}

    def test_now_before_everything(self):
        pending = [make_request(request_id=i, arrival_time=100.0)
                   for i in range(3)]
        report = violation_report(pending, now=50.0)
        assert report.total_requests == 0


class TestTrendEdges:
    def test_trend_zero_for_tiny_runs(self):
        summary = summarize_run([served(1)])
        assert summary.queue_delay_trend == 0.0

    def test_trend_positive_when_latency_ramps(self):
        requests = [
            served(i, arrival=float(i), ttft=1.0 + i * 0.5)
            for i in range(40)
        ]
        summary = summarize_run(requests)
        assert summary.queue_delay_trend > 5.0

    def test_trend_flat_in_steady_state(self):
        requests = [
            served(i, arrival=float(i), ttft=2.0) for i in range(40)
        ]
        summary = summarize_run(requests)
        assert abs(summary.queue_delay_trend) < 0.5
