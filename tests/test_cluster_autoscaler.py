"""Unit tests for the reactive autoscaler."""

import pytest

from repro.cluster.autoscaler import AutoscalerConfig, AutoscalingDeployment
from repro.experiments.runner import scheduler_factory
from repro.workload.arrivals import PoissonArrivals, burst_schedule
from repro.workload.datasets import AZURE_CODE
from repro.workload.tiers import TierAssigner
from repro.workload.trace import TraceBuilder


def build_trace(n=200, qps=2.0, seed=3, arrivals=None):
    return TraceBuilder(
        AZURE_CODE,
        arrivals=arrivals or PoissonArrivals(qps),
        tier_assigner=TierAssigner(),
        seed=seed,
    ).build(n)


def make_deployment(execution_model, **config_kwargs):
    return AutoscalingDeployment(
        execution_model,
        scheduler_factory("qoserve-oracle", execution_model),
        config=AutoscalerConfig(**config_kwargs),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=5, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_threshold=0.4,
                             scale_down_threshold=0.5)
        with pytest.raises(ValueError):
            AutoscalerConfig(control_interval=0)


class TestScaling:
    def test_starts_at_min(self, execution_model):
        deployment = make_deployment(execution_model, min_replicas=2,
                                     max_replicas=6)
        assert deployment.active_replicas == 2

    def test_completes_all_requests(self, execution_model):
        deployment = make_deployment(execution_model, min_replicas=1,
                                     max_replicas=4)
        trace = build_trace(n=150, qps=3.0)
        deployment.submit_trace(trace)
        deployment.run_until_drained()
        assert all(r.is_finished for r in deployment.all_requests())

    def test_scales_up_under_overload(self, execution_model):
        deployment = make_deployment(
            execution_model, min_replicas=1, max_replicas=4,
            control_interval=20.0, provision_delay=10.0,
        )
        trace = build_trace(n=500, qps=8.0)  # far beyond one replica
        deployment.submit_trace(trace)
        deployment.run_until_drained()
        # The pool grew during the overload (and may have drained back
        # down once the short trace emptied).
        assert any(count > 1 for _, count in deployment.scaling_events)
        assert len(deployment._slots) > 1

    def test_never_exceeds_max(self, execution_model):
        deployment = make_deployment(
            execution_model, min_replicas=1, max_replicas=2,
            control_interval=15.0, provision_delay=5.0,
        )
        trace = build_trace(n=400, qps=10.0)
        deployment.submit_trace(trace)
        deployment.run_until_drained()
        assert deployment.provisioned_replicas <= 2

    def test_scales_down_when_idle(self, execution_model):
        deployment = make_deployment(
            execution_model, min_replicas=1, max_replicas=4,
            control_interval=20.0, provision_delay=5.0,
        )
        # A burst then a long quiet tail.
        trace = build_trace(
            n=400,
            arrivals=burst_schedule(
                base_qps=0.2, burst_qps=8.0, burst_start=0.0,
                burst_duration=60.0,
            ),
        )
        deployment.submit_trace(trace)
        deployment.run_until_drained()
        assert deployment.active_replicas < 4

    def test_provision_delay_observed(self, execution_model):
        deployment = make_deployment(
            execution_model, min_replicas=1, max_replicas=3,
            control_interval=10.0, provision_delay=100.0,
        )
        trace = build_trace(n=300, qps=8.0)
        deployment.submit_trace(trace)
        deployment.run(until=50.0)
        # Not enough time has passed for any provisioned replica.
        assert deployment.active_replicas == 1


class TestAccounting:
    def test_gpu_hours_positive_and_bounded(self, execution_model):
        deployment = make_deployment(
            execution_model, min_replicas=1, max_replicas=3,
            control_interval=20.0, provision_delay=10.0,
        )
        trace = build_trace(n=200, qps=4.0)
        deployment.submit_trace(trace)
        end = deployment.run_until_drained()
        hours = deployment.gpu_hours
        assert hours > 0
        assert hours <= 3 * end / 3600.0 + 1e-6

    def test_drained_replicas_stop_costing(self, execution_model):
        deployment = make_deployment(
            execution_model, min_replicas=1, max_replicas=4,
            control_interval=15.0, provision_delay=5.0,
        )
        trace = build_trace(
            n=300,
            arrivals=burst_schedule(0.1, 8.0, 0.0, 60.0),
        )
        deployment.submit_trace(trace)
        deployment.run_until_drained()
        # At the end only the min replica should still hold a GPU.
        assert deployment.provisioned_replicas <= 2
