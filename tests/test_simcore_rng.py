"""Unit tests for named RNG streams."""

from repro.simcore.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("arrivals").random(5)
        b = RngStreams(7).stream("arrivals").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        streams = RngStreams(7)
        a = streams.stream("arrivals").random(5)
        b = streams.stream("lengths").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(5)
        b = RngStreams(2).stream("x").random(5)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_consumption_isolated_between_names(self):
        """Draining one stream must not perturb a sibling stream."""
        fresh = RngStreams(3)
        expected = fresh.stream("b").random(4)

        drained = RngStreams(3)
        drained.stream("a").random(1000)  # heavy use of another stream
        assert (drained.stream("b").random(4) == expected).all()

    def test_fork_changes_streams(self):
        base = RngStreams(5)
        forked = base.fork(1)
        assert forked.seed != base.seed
        a = base.stream("x").random(4)
        b = forked.stream("x").random(4)
        assert not (a == b).all()

    def test_fork_deterministic(self):
        assert RngStreams(5).fork(2).seed == RngStreams(5).fork(2).seed

    def test_seed_property(self):
        assert RngStreams(99).seed == 99
