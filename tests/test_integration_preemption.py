"""Engine-level preemption and re-keying behaviour.

Selective preemption (Section 3.4) and SRPF's continuous re-ranking
are queue *policies*; these tests confirm they actually manifest in
executed schedules: who runs first, who gets paused mid-prefill, and
that decodes are never interrupted.
"""

import pytest

from repro.engine import ReplicaConfig, ReplicaEngine
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import make_scheduler
from repro.simcore import Simulator
from tests.conftest import Q1, Q2, make_request


@pytest.fixture(scope="module")
def em():
    return get_execution_model("llama3-8b")


def run_requests(em, scheduler, requests, record=True):
    sim = Simulator()
    engine = ReplicaEngine(
        sim, em, scheduler, ReplicaConfig(record_iterations=record)
    )
    for r in requests:
        engine.submit(r)
    sim.run(max_events=2_000_000)
    return engine, sim


class TestSrpfPreemption:
    def test_short_arrival_preempts_long_prefill(self, em):
        """A long prompt mid-prefill is paused while a later short one
        runs to completion first (SRPF's defining behaviour)."""
        long = make_request(request_id=1, arrival_time=0.0,
                            prompt_tokens=6000, decode_tokens=2, qos=Q2)
        short = make_request(request_id=2, arrival_time=0.2,
                             prompt_tokens=300, decode_tokens=2, qos=Q2)
        engine, _ = run_requests(
            em, make_scheduler("srpf", em), [long, short]
        )
        assert short.first_token_time < long.first_token_time
        # The long prompt had started before the short one arrived.
        assert long.scheduled_first_time < short.arrival_time

    def test_fcfs_does_not_preempt(self, em):
        long = make_request(request_id=1, arrival_time=0.0,
                            prompt_tokens=6000, decode_tokens=2, qos=Q2)
        short = make_request(request_id=2, arrival_time=0.2,
                             prompt_tokens=300, decode_tokens=2, qos=Q2)
        engine, _ = run_requests(
            em, make_scheduler("fcfs", em), [long, short]
        )
        assert long.first_token_time < short.first_token_time


class TestQoServeSelectivePreemption:
    def test_urgent_interactive_jumps_batch_prefill(self, em):
        """An interactive arrival overtakes an in-flight batch prefill
        (selective preemption: prefill-phase only, no violation)."""
        batch = make_request(request_id=1, arrival_time=0.0,
                             prompt_tokens=8000, decode_tokens=2, qos=Q2)
        chat = make_request(request_id=2, arrival_time=0.1,
                            prompt_tokens=400, decode_tokens=5, qos=Q1)
        engine, _ = run_requests(
            em, make_scheduler("qoserve-oracle", em), [batch, chat]
        )
        assert chat.first_token_time < batch.first_token_time
        assert chat.ttft < 6.0

    def test_decodes_never_interrupted(self, em):
        """Once decoding, a request emits a token every iteration until
        done — even when heavy prefill work arrives (decode-queue
        requests are never preempted, Section 3.4)."""
        chat = make_request(request_id=1, arrival_time=0.0,
                            prompt_tokens=200, decode_tokens=60, qos=Q1)
        requests = [chat] + [
            make_request(request_id=2 + i, arrival_time=0.5 + i * 0.05,
                         prompt_tokens=8000, decode_tokens=2, qos=Q2)
            for i in range(4)
        ]
        engine, _ = run_requests(
            em, make_scheduler("qoserve-oracle", em), requests
        )
        # Every inter-token gap of the chat request is bounded by one
        # iteration of the largest permissible batch — no starvation.
        assert chat.is_finished
        assert chat.max_tbt < 0.40
        assert chat.tbt_deadline_misses == 0


class TestIterationTelemetry:
    def test_busy_time_equals_sum_of_exec_times(self, em):
        requests = [
            make_request(request_id=i, arrival_time=i * 0.3,
                         prompt_tokens=500 + 100 * i, decode_tokens=5)
            for i in range(10)
        ]
        engine, _ = run_requests(
            em, make_scheduler("edf", em), requests
        )
        total = sum(r.exec_time for r in engine.iteration_records)
        assert engine.busy_time == pytest.approx(total)

    def test_kv_utilization_recorded_in_unit_interval(self, em):
        requests = [
            make_request(request_id=i, prompt_tokens=1000,
                         decode_tokens=20)
            for i in range(5)
        ]
        engine, _ = run_requests(
            em, make_scheduler("edf", em), requests
        )
        for record in engine.iteration_records:
            assert 0.0 <= record.kv_utilization <= 1.0
