"""Engine tests for the decode-side handoff path and pathological
inputs (fault injection)."""

import pytest

from repro.engine import ReplicaConfig, ReplicaEngine
from repro.engine.kvcache import KVCacheManager
from repro.schedulers import FCFSScheduler
from repro.simcore import Simulator
from tests.conftest import Q1, Q2, make_request


def make_engine(execution_model, max_slots=256, kv_tokens=None):
    sim = Simulator()
    engine = ReplicaEngine(
        sim, execution_model, FCFSScheduler(),
        ReplicaConfig(max_decode_slots=max_slots),
    )
    if kv_tokens is not None:
        engine.kv_cache = KVCacheManager(capacity_tokens=kv_tokens)
    return engine, sim


def prefilled(rid, prompt=500, decode=10, qos=Q1):
    r = make_request(request_id=rid, prompt_tokens=prompt,
                     decode_tokens=decode, qos=qos)
    r.prefill_done = prompt
    return r


class TestSubmitPrefilled:
    def test_decodes_to_completion(self, execution_model):
        engine, sim = make_engine(execution_model)
        r = prefilled(1)
        engine.submit_prefilled(r)
        sim.run(max_events=10_000)
        assert r.is_finished
        assert r.first_token_time is not None
        assert engine.kv_cache.used_blocks == 0

    def test_first_token_from_first_iteration(self, execution_model):
        engine, sim = make_engine(execution_model)
        r = prefilled(1)
        engine.submit_prefilled(r)
        sim.run(max_events=10)
        assert r.decoded >= 1

    def test_rejects_unprefilled(self, execution_model):
        engine, _ = make_engine(execution_model)
        with pytest.raises(ValueError):
            engine.submit_prefilled(make_request())

    def test_rejects_finished(self, execution_model):
        engine, _ = make_engine(execution_model)
        r = prefilled(1, decode=1)
        r.record_output_token(1.0)
        with pytest.raises(ValueError):
            engine.submit_prefilled(r)

    def test_waits_for_decode_slot(self, execution_model):
        engine, sim = make_engine(execution_model, max_slots=2)
        requests = [prefilled(i, decode=30) for i in range(5)]
        for r in requests:
            engine.submit_prefilled(r)
        assert len(engine.decode_queue) == 2
        sim.run(max_events=100_000)
        assert all(r.is_finished for r in requests)

    def test_waits_for_kv_space(self, execution_model):
        engine, sim = make_engine(execution_model, kv_tokens=2048)
        big = prefilled(1, prompt=1500, decode=20)
        second = prefilled(2, prompt=1500, decode=20)
        engine.submit_prefilled(big)
        engine.submit_prefilled(second)
        assert len(engine.decode_queue) == 1  # second waits on KV
        sim.run(max_events=100_000)
        assert big.is_finished and second.is_finished

    def test_mixes_with_colocated_prefill(self, execution_model):
        """A replica can serve both handoffs and fresh requests."""
        engine, sim = make_engine(execution_model)
        handoff = prefilled(1, decode=40)
        fresh = make_request(request_id=2, prompt_tokens=700,
                             decode_tokens=10)
        engine.submit_prefilled(handoff)
        engine.submit(fresh)
        sim.run(max_events=100_000)
        assert handoff.is_finished and fresh.is_finished


class TestPathologicalInputs:
    def test_oversized_prompt_rejected_at_admission(self, execution_model):
        """A prompt that can never fit in KV is refused up front (as
        vLLM refuses over-length prompts) instead of wedging the
        replica."""
        engine, sim = make_engine(execution_model, kv_tokens=4096)
        monster = make_request(request_id=1, prompt_tokens=50_000,
                               decode_tokens=5, qos=Q2)
        normal = make_request(request_id=2, arrival_time=0.1,
                              prompt_tokens=400, decode_tokens=5)
        engine.submit(monster)
        engine.submit(normal)
        sim.run(max_events=100_000)
        assert monster in engine.rejected
        assert not monster.is_finished
        assert normal.is_finished

    def test_mutual_prefill_deadlock_recovers(self, execution_model):
        """Two partially-prefilled prompts that jointly fill KV while
        neither fits in the leftover space: the engine must evict one
        for recompute rather than stall both forever.

        The wedged state is constructed directly — the normal
        admission watermark makes it rare, which is exactly why the
        recovery path needs a deterministic test.
        """
        engine, sim = make_engine(execution_model, kv_tokens=4096)
        a = make_request(request_id=1, prompt_tokens=3000,
                         decode_tokens=3, qos=Q2)
        b = make_request(request_id=2, prompt_tokens=3000,
                         decode_tokens=3, qos=Q2)
        for r, progress in ((a, 2048), (b, 2048)):
            r.prefill_done = progress
            r.scheduled_first_time = 0.0
            engine.kv_cache.grow(r.request_id, progress)
            engine._inflight_prefills.add(r.request_id)
            engine.scheduler.enqueue(r, 0.0)
        engine.scheduler.kv_start_watermark = 1.0
        assert engine.kv_cache.free_blocks == 0  # wedged
        engine._maybe_start()
        sim.run(max_events=200_000)
        assert a.is_finished and b.is_finished
        assert a.evictions + b.evictions >= 1

    def test_simultaneous_arrivals(self, execution_model):
        engine, sim = make_engine(execution_model)
        requests = [
            make_request(request_id=i, arrival_time=5.0,
                         prompt_tokens=200 + i, decode_tokens=3)
            for i in range(20)
        ]
        for r in requests:
            engine.submit(r)
        sim.run(max_events=100_000)
        assert all(r.is_finished for r in requests)

    def test_zero_arrival_burst_with_tiny_slots(self, execution_model):
        engine, sim = make_engine(execution_model, max_slots=1)
        requests = [
            make_request(request_id=i, arrival_time=0.0,
                         prompt_tokens=100, decode_tokens=5)
            for i in range(10)
        ]
        for r in requests:
            engine.submit(r)
        sim.run(max_events=200_000)
        assert all(r.is_finished for r in requests)
        # Serial execution: roughly one request resident at a time.
        assert engine.iterations_run >= 10 * 5
