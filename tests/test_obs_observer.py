"""Observer integration tests: tracing, metrics, determinism, timing.

The load-bearing guarantee of :mod:`repro.obs` is that attaching an
observer never changes scheduling behaviour.  The determinism test
pins it: the same workload produces a byte-identical summary with
tracing on and off.
"""

import json

import pytest

from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.metrics.export import summary_to_dict
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    TracingObserver,
    default_observer,
    get_default_observer,
    set_default_observer,
)
from repro.obs.timing import WallClockProfiler, timed
from repro.obs.trace import ListSink, TraceRecorder
from repro.simcore import Simulator
from repro.workload.datasets import AZURE_CODE
from tests.conftest import Q1, make_request


def run_engine(execution_model, observer=None, num_requests=12):
    trace = build_trace(
        AZURE_CODE, qps=6.0, num_requests=num_requests, seed=11
    )
    scheduler = make_scheduler("qoserve-oracle", execution_model)
    return run_replica_trace(
        execution_model, scheduler, trace, observer=observer
    )


class TestTracingObserver:
    def test_records_iterations_and_completions(self, execution_model):
        sink = ListSink()
        observer = TracingObserver(recorder=TraceRecorder([sink]))
        summary, _ = run_engine(execution_model, observer=observer)
        kinds = {e["kind"] for e in sink.events}
        assert "iteration_scheduled" in kinds
        assert "chunk_sized" in kinds
        assert "request_completed" in kinds
        assert "kv_cache_snapshot" in kinds
        completed = [
            e for e in sink.events if e["kind"] == "request_completed"
        ]
        assert len(completed) == summary.finished

    def test_metrics_registry_agrees_with_summary(self, execution_model):
        observer = TracingObserver()
        summary, engine = run_engine(execution_model, observer=observer)
        reg = observer.registry
        families = reg.to_dict()
        iters = sum(
            s["value"]
            for s in families["repro_iterations_total"]["series"]
        )
        assert iters == engine.iterations_run
        done = sum(
            s["value"]
            for s in families["repro_requests_completed_total"]["series"]
        )
        assert done == summary.finished

    def test_kv_snapshot_downsampling(self, execution_model):
        sink = ListSink()
        every = TracingObserver(recorder=TraceRecorder([ListSink()]))
        sampled = TracingObserver(
            recorder=TraceRecorder([sink]), kv_snapshot_every=10
        )
        run_engine(execution_model, observer=every)
        _, engine = run_engine(execution_model, observer=sampled)
        snaps = [
            e for e in sink.events if e["kind"] == "kv_cache_snapshot"
        ]
        assert 0 < len(snaps) <= engine.iterations_run // 10 + 1

    def test_kv_snapshot_every_validation(self):
        with pytest.raises(ValueError):
            TracingObserver(kv_snapshot_every=0)


class TestDeterminism:
    def test_summary_identical_with_and_without_observer(
        self, execution_model
    ):
        """Tracing must be a pure read: byte-identical RunSummary."""
        observer = TracingObserver(recorder=TraceRecorder([ListSink()]))
        baseline, _ = run_engine(execution_model, observer=None)
        traced, _ = run_engine(execution_model, observer=observer)
        assert observer.recorder.total_events > 0  # it really recorded
        blob = lambda s: json.dumps(summary_to_dict(s), sort_keys=True)
        assert blob(baseline) == blob(traced)

    def test_summary_identical_under_default_observer(
        self, execution_model
    ):
        """The CLI's process-global path is equally side-effect-free."""
        baseline, _ = run_engine(execution_model)
        observer = TracingObserver(recorder=TraceRecorder([ListSink()]))
        with default_observer(observer):
            traced, _ = run_engine(execution_model)
        assert observer.recorder.total_events > 0
        blob = lambda s: json.dumps(summary_to_dict(s), sort_keys=True)
        assert blob(baseline) == blob(traced)


class TestDefaultObserver:
    def test_default_is_null_observer(self):
        assert get_default_observer() is NULL_OBSERVER

    def test_set_and_restore(self):
        mine = Observer()
        previous = set_default_observer(mine)
        try:
            assert get_default_observer() is mine
        finally:
            set_default_observer(previous)
        assert get_default_observer() is NULL_OBSERVER

    def test_engine_adopts_default(self, execution_model):
        mine = TracingObserver(recorder=TraceRecorder([ListSink()]))
        with default_observer(mine):
            engine = ReplicaEngine(
                Simulator(),
                execution_model,
                make_scheduler("fcfs", execution_model),
                ReplicaConfig(),
            )
        assert engine.observer is mine

    def test_explicit_observer_wins_over_default(self, execution_model):
        mine = TracingObserver(recorder=TraceRecorder([ListSink()]))
        explicit = Observer()
        with default_observer(mine):
            engine = ReplicaEngine(
                Simulator(),
                execution_model,
                make_scheduler("fcfs", execution_model),
                ReplicaConfig(),
                observer=explicit,
            )
        assert engine.observer is explicit


class TestSchedulerStats:
    def test_populated_without_any_observer(self, execution_model):
        summary, engine = run_engine(execution_model)
        stats = summary.scheduler_stats
        assert stats["iterations"] == engine.iterations_run
        assert stats["preemptions"] == engine.stall_preemptions
        assert stats["decode_evictions"] == engine.decode_evictions
        assert 0.0 < stats["kv_high_water_utilization"] <= 1.0
        hist = stats["chunk_size_histogram"]
        assert sum(hist.values()) == sum(
            engine.chunk_tokens_hist.values()
        )
        assert sum(hist.values()) > 0

    def test_exported_in_summary_dict(self, execution_model):
        summary, _ = run_engine(execution_model)
        flat = summary_to_dict(summary)
        assert "scheduler_stats" in flat
        assert json.dumps(flat)  # strictly JSON-serializable

    def test_relegations_counted_by_tier(self):
        # Synthetic check: the stats helper only reads request flags.
        from repro.experiments.runner import engine_scheduler_stats

        class FakeKV:
            high_water_utilization = 0.5

        class FakeEngine:
            stall_preemptions = 1
            decode_evictions = 2
            iterations_run = 3
            kv_cache = FakeKV()
            from collections import Counter
            chunk_tokens_hist = Counter({128: 2})

            def __init__(self, requests):
                self.submitted = requests

        r1 = make_request(request_id=1, qos=Q1)
        r2 = make_request(request_id=2, qos=Q1)
        r1.relegated = True
        r2.relegated = True
        stats = engine_scheduler_stats(FakeEngine([r1, r2]))
        assert stats["relegations_by_tier"] == {Q1.name: 2}
        assert stats["relegations_total"] == 2


class TestTimed:
    def test_decorator_records_only_when_enabled(self):
        profiler = WallClockProfiler()

        @timed("work", profiler)
        def work(x):
            return x * 2

        assert work(2) == 4
        assert profiler.totals == {}
        profiler.enable()
        assert work(3) == 6
        assert profiler.counts["work"] == 1
        assert profiler.totals["work"] >= 0.0

    def test_context_manager_form(self):
        profiler = WallClockProfiler()
        profiler.enable()
        with timed("section", profiler):
            pass
        assert profiler.counts["section"] == 1

    def test_report_sorted_by_total(self):
        profiler = WallClockProfiler()
        profiler.record("slow", 2.0)
        profiler.record("fast", 0.5)
        report = profiler.report()
        assert list(report) == ["slow", "fast"]
        assert report["slow"]["calls"] == 1
        text = profiler.report_text()
        assert "slow" in text and "fast" in text

    def test_exceptions_still_recorded(self):
        profiler = WallClockProfiler()
        profiler.enable()

        @timed("boom", profiler)
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            boom()
        assert profiler.counts["boom"] == 1


class TestMultiObserver:
    def test_fans_out_every_hook(self, execution_model):
        from repro.obs.observer import MultiObserver

        sink_a, sink_b = ListSink(), ListSink()
        multi = MultiObserver([
            TracingObserver(recorder=TraceRecorder([sink_a])),
            TracingObserver(recorder=TraceRecorder([sink_b])),
        ])
        run_engine(execution_model, observer=multi)
        assert sink_a.events  # both children saw the full stream
        assert sink_a.events == sink_b.events

    def test_preserves_determinism_pin(self, execution_model):
        from repro.obs.observer import MultiObserver

        baseline, _ = run_engine(execution_model)
        multi = MultiObserver([TracingObserver(), NULL_OBSERVER])
        observed, _ = run_engine(execution_model, observer=multi)
        assert json.dumps(
            summary_to_dict(baseline), sort_keys=True
        ) == json.dumps(summary_to_dict(observed), sort_keys=True)


class TestDroppedEventsCounter:
    def test_ring_overflow_counted_as_metric(self, execution_model):
        from repro.obs.trace import RingSink

        ring = RingSink(capacity=8)  # tiny: guaranteed overflow
        observer = TracingObserver(recorder=TraceRecorder([ring]))
        run_engine(execution_model, observer=observer)
        entry = observer.registry.to_dict()[
            "repro_trace_events_dropped_total"
        ]
        [series] = entry["series"]
        assert series["value"] == ring.dropped > 0


class TestRelegationServedEvent:
    def test_emitted_once_per_relegated_request(self, execution_model):
        # Relegation needs the EDF base (hybrid prioritization masks
        # it) and real overload; qps 12 demotes a handful of requests.
        from repro.schedulers.qoserve import make_ablation_config

        sink = ListSink()
        observer = TracingObserver(recorder=TraceRecorder([sink]))
        trace = build_trace(
            AZURE_CODE, qps=1.0, num_requests=150, seed=5
        ).scaled_arrivals(12.0)
        config = make_ablation_config(
            dynamic_chunking=True, eager_relegation=True
        )
        scheduler = make_scheduler(
            "qoserve", execution_model, qoserve_config=config
        )
        summary, _ = run_replica_trace(
            execution_model, scheduler, trace, observer=observer
        )
        assert summary.scheduler_stats["relegations_total"] > 0, (
            "workload must actually trigger relegation"
        )
        relegated = {
            e["request_id"] for e in sink.events
            if e["kind"] == "relegated"
        }
        served = [
            e for e in sink.events if e["kind"] == "relegation_served"
        ]
        served_ids = {e["request_id"] for e in served}
        assert served_ids, "no relegated request was ever served"
        assert len(served) == len(served_ids), "must emit at most once"
        assert served_ids <= relegated
        for event in served:
            assert event["waited"] >= 0.0
