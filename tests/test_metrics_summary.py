"""Unit tests for run summaries."""

import math

import pytest

from repro.metrics.summary import summarize_run
from tests.conftest import Q1, Q2, make_request


def served(rid, arrival=0.0, ttft=1.0, qos=Q1, decode_tokens=3):
    r = make_request(request_id=rid, arrival_time=arrival,
                     prompt_tokens=100, decode_tokens=decode_tokens,
                     qos=qos)
    r.prefill_done = 100
    r.record_output_token(arrival + ttft)
    for i in range(1, decode_tokens):
        r.record_output_token(arrival + ttft + 0.02 * i)
    return r


class TestSummarizeRun:
    def test_counts(self):
        requests = [served(i) for i in range(5)]
        requests.append(make_request(request_id=99))
        summary = summarize_run(requests, now=100.0)
        assert summary.num_requests == 6
        assert summary.finished == 5

    def test_tier_percentiles(self):
        requests = [served(i, ttft=float(i + 1)) for i in range(5)]
        requests += [served(10 + i, ttft=50.0, qos=Q2) for i in range(3)]
        summary = summarize_run(requests)
        assert summary.tier_percentile("Q1", 0.50) == pytest.approx(3.0)
        # Q2 is judged on TTLT: ttft + 0.02 * 2.
        assert summary.tier_percentile("Q2", 0.50) == pytest.approx(
            50.04, abs=0.01
        )
        assert math.isnan(summary.tier_percentile("Q9", 0.5))

    def test_goodput_bar(self):
        good = [served(i) for i in range(200)]
        summary = summarize_run(good)
        assert summary.meets_goodput_bar
        bad = good + [served(999, ttft=30.0) for _ in range(10)]
        summary = summarize_run(bad)
        assert not summary.meets_goodput_bar

    def test_mean_ttft(self):
        requests = [served(i, ttft=2.0) for i in range(4)]
        summary = summarize_run(requests)
        assert summary.mean_ttft == pytest.approx(2.0)

    def test_qps_served(self):
        requests = [served(i, arrival=float(i)) for i in range(11)]
        summary = summarize_run(requests)
        # 11 completions over the ~11.04 s arrival-to-last-completion
        # span (last arrival at t=10 plus ~1.04 s of service).
        assert summary.qps_served == pytest.approx(1.0, rel=0.05)

    def test_empty_run(self):
        summary = summarize_run([])
        assert summary.num_requests == 0
        assert summary.qps_served == 0.0
