"""Unit tests for CSV/JSON export."""

import csv
import json
import math

from repro.experiments.result import ExperimentResult
from repro.metrics.export import (
    load_result_json,
    result_to_csv,
    result_to_json,
    summary_to_dict,
    summary_to_json,
)
from repro.metrics.summary import summarize_run
from tests.conftest import Q1, make_request


def sample_result():
    result = ExperimentResult("fig-x", "demo", notes=["n1"])
    result.rows = [
        {"scheme": "A", "qps": 2.0, "viol": 0.5},
        {"scheme": "B", "qps": 2.0, "viol": float("nan")},
    ]
    return result


def sample_summary():
    r = make_request(prompt_tokens=10, decode_tokens=2, qos=Q1)
    r.prefill_done = 10
    r.record_output_token(1.0)
    r.record_output_token(1.03)
    return summarize_run([r])


class TestCsv:
    def test_round_trip_columns(self, tmp_path):
        path = tmp_path / "r.csv"
        result_to_csv(sample_result(), path)
        with path.open() as source:
            rows = list(csv.DictReader(source))
        assert rows[0]["scheme"] == "A"
        assert float(rows[0]["viol"]) == 0.5
        assert len(rows) == 2


class TestJson:
    def test_result_round_trip(self, tmp_path):
        path = tmp_path / "r.json"
        original = sample_result()
        result_to_json(original, path)
        loaded = load_result_json(path)
        assert loaded.experiment == original.experiment
        assert loaded.notes == original.notes
        assert loaded.rows[0]["scheme"] == "A"

    def test_nan_becomes_null(self, tmp_path):
        path = tmp_path / "r.json"
        result_to_json(sample_result(), path)
        payload = json.loads(path.read_text())
        assert payload["rows"][1]["viol"] is None

    def test_summary_dict_structure(self):
        flat = summary_to_dict(sample_summary())
        assert flat["finished"] == 1
        assert "violations" in flat
        assert "per_tier_pct" in flat["violations"]
        assert flat["violations"]["overall_pct"] == 0.0

    def test_summary_json_is_valid(self, tmp_path):
        path = tmp_path / "s.json"
        summary_to_json(sample_summary(), path)
        payload = json.loads(path.read_text())
        assert payload["num_requests"] == 1
        # json.dumps must not have emitted bare NaN.
        assert "NaN" not in path.read_text()

    def test_inf_handling(self):
        from repro.metrics.export import _jsonable

        assert _jsonable(float("inf")) is None
        assert _jsonable(float("-inf")) is None
        assert _jsonable({"a": [1.0, float("nan")]}) == {"a": [1.0, None]}
        assert not math.isnan(_jsonable(1.5))

    def test_empty_run_summary_is_strict_json(self, tmp_path):
        """An empty run (all-NaN latencies) must emit strict JSON."""
        path = tmp_path / "empty.json"
        summary_to_json(summarize_run([]), path)
        text = path.read_text()
        payload = json.loads(text)  # parseable at all
        for bad in ("NaN", "Infinity", '"nan"', '"inf"'):
            assert bad not in text
        assert payload["mean_ttft"] is None
        assert payload["violations"]["overall_pct"] is None
