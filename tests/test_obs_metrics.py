"""Unit tests for the zero-dependency metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_CHUNK_BUCKETS,
    MetricsRegistry,
    bucket_counts,
    format_value,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "a counter")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1.0)

    def test_create_or_get_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total")
        b = registry.counter("c_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")


class TestGauge:
    def test_set_and_max_tracking(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.labels().max_seen == 5.0


class TestLabels:
    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("c", labelnames=("tier",))
        counter.labels("Q1").inc()
        counter.labels("Q1").inc()
        counter.labels("Q2").inc()
        assert counter.labels("Q1").value == 2.0
        assert counter.labels("Q2").value == 1.0

    def test_keyword_labels(self):
        counter = MetricsRegistry().counter(
            "c", labelnames=("tier", "replica")
        )
        counter.labels(tier="Q1", replica="0").inc()
        assert counter.labels("Q1", "0").value == 1.0

    def test_wrong_label_count_rejected(self):
        counter = MetricsRegistry().counter("c", labelnames=("tier",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.labels("Q1", "extra")


class TestHistogram:
    def test_bucket_assignment(self):
        hist = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0)
        )
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        cumulative = hist.labels().cumulative()
        assert cumulative == [(1.0, 1), (10.0, 2), (float("inf"), 3)]
        assert hist.labels().count == 3
        assert hist.labels().total == 105.5

    def test_observe_nan_rejected(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="NaN"):
            hist.observe(float("nan"))

    def test_no_scalar_value(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        with pytest.raises(TypeError):
            _ = hist.value


class TestPrometheusText:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_iterations_total", "iterations", ("replica",)
        )
        counter.labels("0").inc(7)
        hist = registry.histogram(
            "repro_exec_seconds", "exec time", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.to_prometheus_text()
        assert "# TYPE repro_iterations_total counter" in text
        assert 'repro_iterations_total{replica="0"} 7' in text
        assert "# TYPE repro_exec_seconds histogram" in text
        assert 'repro_exec_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_exec_seconds_bucket{le="1"} 1' in text
        assert 'repro_exec_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_exec_seconds_count 2" in text
        assert text.endswith("\n")

    def test_write_and_json_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total", "help me").inc(3)
        prom = tmp_path / "m.prom"
        registry.write_prometheus(prom)
        assert "c_total 3" in prom.read_text()
        js = tmp_path / "m.json"
        registry.write_json(js)
        payload = json.loads(js.read_text())
        assert payload["c_total"]["series"][0]["value"] == 3.0


class TestFormatValue:
    def test_special_values(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"


class TestBucketCounts:
    def test_from_iterable(self):
        out = bucket_counts([10, 100, 3000], buckets=(32, 2048))
        assert out == {"le_32": 1, "le_2048": 1, "le_inf": 1}

    def test_from_mapping_with_multiplicity(self):
        out = bucket_counts({16: 5, 4096: 2}, buckets=(32, 2048))
        assert out == {"le_32": 5, "le_2048": 0, "le_inf": 2}

    def test_default_buckets_cover_paper_saturation(self):
        out = bucket_counts([2500], DEFAULT_CHUNK_BUCKETS)
        assert out["le_2500"] == 1
        assert out["le_inf"] == 0
