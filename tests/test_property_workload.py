"""Property-based tests for workload generation."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.simcore.rng import RngStreams
from repro.workload.arrivals import DiurnalArrivals, PoissonArrivals
from repro.workload.distributions import LognormalLengths


@given(
    p50=st.floats(1.0, 5000.0),
    ratio=st.floats(1.01, 10.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50, deadline=None)
def test_lognormal_samples_valid(p50, ratio, seed):
    dist = LognormalLengths(p50=p50, p90=p50 * ratio, max_tokens=100_000)
    rng = np.random.default_rng(seed)
    samples = dist.sample(rng, 200)
    assert (samples >= 1).all()
    assert (samples <= 100_000).all()
    assert samples.dtype == np.int64


@given(
    p50=st.floats(10.0, 3000.0),
    ratio=st.floats(1.05, 8.0),
    q=st.floats(0.05, 0.95),
)
@settings(max_examples=60, deadline=None)
def test_lognormal_percentile_monotone_and_anchored(p50, ratio, q):
    dist = LognormalLengths(p50=p50, p90=p50 * ratio)
    assert dist.percentile(0.5) == np.float64(p50) or abs(
        dist.percentile(0.5) - p50
    ) < 1e-6 * p50
    lower = dist.percentile(max(0.01, q - 0.04))
    upper = dist.percentile(min(0.99, q + 0.04))
    assert lower <= dist.percentile(q) <= upper


@given(
    qps=st.floats(0.1, 50.0),
    n=st.integers(1, 300),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50, deadline=None)
def test_poisson_arrivals_sorted_positive(qps, n, seed):
    rng = np.random.default_rng(seed)
    arrivals = PoissonArrivals(qps).generate(rng, n)
    assert len(arrivals) == n
    assert arrivals[0] > 0
    assert (np.diff(arrivals) >= 0).all()


@given(
    low=st.floats(0.5, 5.0),
    high_extra=st.floats(0.1, 10.0),
    phase=st.floats(10.0, 2000.0),
    n=st.integers(1, 200),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_diurnal_arrivals_sorted_and_rate_bounded(low, high_extra, phase,
                                                  n, seed):
    arrivals = DiurnalArrivals(low, low + high_extra, phase)
    rng = np.random.default_rng(seed)
    times = arrivals.generate(rng, n)
    assert len(times) == n
    assert (np.diff(times) >= 0).all()
    for t in (0.0, phase / 2, phase * 1.5, phase * 7.2):
        assert low <= arrivals.rate_at(t) <= low + high_extra


@given(seed=st.integers(0, 2**16), name=st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_rng_streams_stable(seed, name):
    a = RngStreams(seed).stream(name).random(3)
    b = RngStreams(seed).stream(name).random(3)
    assert (a == b).all()
