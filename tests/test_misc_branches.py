"""Coverage for less-travelled branches across modules."""

import numpy as np
import pytest

from repro.forest import DecisionTreeRegressor, RandomForestRegressor
from tests.conftest import Q2, make_request


class TestForestFeatureSubsampling:
    def test_max_features_limits_split_candidates(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(200, 4))
        y = x[:, 0] * 10  # only feature 0 is informative
        # With max_features=1 the tree often splits on uninformative
        # features; accuracy should be no better than the full tree.
        sub = DecisionTreeRegressor(
            max_depth=4, max_features=1,
            rng=np.random.default_rng(1),
        ).fit(x, y)
        full = DecisionTreeRegressor(max_depth=4).fit(x, y)
        err_sub = float(np.mean((sub.predict(x) - y) ** 2))
        err_full = float(np.mean((full.predict(x) - y) ** 2))
        assert err_full <= err_sub + 1e-9

    def test_forest_with_feature_subsampling_fits(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(150, 3))
        y = x.sum(axis=1)
        forest = RandomForestRegressor(
            n_trees=5, max_depth=6, max_features=2, seed=3
        ).fit(x, y)
        err = forest.mean_relative_error(x, y)
        assert err < 0.25


class TestDecodePoolDefaults:
    def test_non_interactive_request_uses_default_tbt(self,
                                                      execution_model):
        from repro.cluster.decode_pool import QoSSharedDecodePool
        from repro.simcore import Simulator

        sim = Simulator()
        pool = QoSSharedDecodePool(
            sim, execution_model, num_replicas=1, default_tbt=0.2
        )
        batch_job = make_request(prompt_tokens=500, decode_tokens=10,
                                 qos=Q2)
        batch_job.prefill_done = 500
        assert pool._tbt_of(batch_job) == 0.2
        pool.accept(batch_job, 0.0)
        sim.run(max_events=10_000)
        assert batch_job.is_finished


class TestSiloSummaryAtTime:
    def test_summarize_with_explicit_now(self, execution_model):
        from repro.cluster.deployment import ClusterDeployment
        from repro.experiments.runner import scheduler_factory

        cluster = ClusterDeployment(
            execution_model,
            scheduler_factory("fcfs", execution_model),
            num_replicas=1,
        )
        r = make_request(arrival_time=0.0, prompt_tokens=400,
                         decode_tokens=3)
        cluster.submit(r)
        cluster.run(until=0.01)  # barely started
        summary = cluster.summarize(now=0.01)
        assert summary.finished == 0
        assert summary.num_requests == 1


class TestRequestExtras:
    def test_extra_dict_available_for_annotations(self):
        r = make_request()
        r._extra["routing_hint"] = "replica-3"
        assert r._extra["routing_hint"] == "replica-3"

    def test_repr_does_not_explode(self):
        text = repr(make_request())
        assert "Request" in text
        assert "_extra" not in text  # repr=False field


class TestSimulatorPriorityTieBreak:
    def test_control_events_before_equal_time_work(self):
        """Negative-priority events (the autoscaler's control tick)
        run before same-timestamp zero-priority events."""
        from repro.simcore import Simulator

        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("work"), priority=0)
        sim.schedule(1.0, lambda: log.append("control"), priority=-1)
        sim.run()
        assert log == ["control", "work"]
