"""Heterogeneous elastic fleets: determinism, autoscaling, chaos coherence.

Covers ROADMAP item 5's three composed layers:

* routing determinism under resize — ``least-loaded`` and
  ``power-of-two`` produce byte-identical summaries across repeated
  runs while replicas crash, recover and drain mid-trace;
* burn-rate vs busy-fraction autoscaling behaviour (scale-up under
  sustained overload, drain under sustained idleness, hysteresis);
* fault coherence — faults aimed at unprovisioned/drained/released
  slots are skipped no-ops, arm-time validation still rejects targets
  outside the pool *bound*, and the pool bound ignores crashed
  replicas.
"""

import json

import pytest

from repro.api import ServeConfig, Session
from repro.cluster.fleet import (
    BurnRateAutoscaler,
    BusyFractionAutoscaler,
    DEFAULT_HARDWARE_CLASSES,
    FleetConfig,
    FleetDeployment,
    HardwareClass,
    parse_fleet_spec,
)
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import build_trace, scheduler_factory
from repro.faults.plan import FaultPlan, ReplicaCrash
from repro.faults.policy import ResilienceConfig
from repro.metrics import summary_to_dict
from repro.perfmodel.hardware import A100_80GB

EXEC = get_execution_model("llama3-8b")


def _trace(n=120, qps=8.0, seed=7):
    return build_trace(
        "ShareGPT", qps=qps, num_requests=n, seed=seed,
        low_priority_fraction=0.25,
    )


def _config(initial=("a100", "a100", "a100"), **kwargs):
    defaults = dict(
        classes=DEFAULT_HARDWARE_CLASSES,
        initial=initial,
        min_replicas=1,
        max_replicas=6,
        control_interval=10.0,
        provision_delay=15.0,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def _fleet(config=None, autoscaler=None, plan=None, routing="perf-aware"):
    return FleetDeployment(
        EXEC,
        scheduler_factory("qoserve", EXEC),
        fleet=config or _config(),
        routing=routing,
        fault_plan=plan,
        resilience=ResilienceConfig(shed_free_below=0.5),
        autoscaler=autoscaler,
    )


def _summary_bytes(fleet):
    return json.dumps(
        summary_to_dict(fleet.summarize()), sort_keys=True
    ).encode()


class TestRoutingDeterminismUnderResize:
    """Satellite: load-aware routing stays byte-deterministic while
    the pool churns (crash, recover, drain) mid-trace."""

    CHAOS = FaultPlan(
        events=(ReplicaCrash(time=4.0, replica_id=1, recover_after=5.0),)
    )

    def _run(self, routing):
        trace = _trace()
        fleet = _fleet(plan=self.CHAOS, routing=routing)
        # Drain replica 2 mid-trace, between the crash and recovery
        # of replica 1, so routing sees every membership state.
        fleet.simulator.schedule(
            6.0, lambda: fleet._scale_down(fleet.simulator.now)
        )
        fleet.submit_trace(trace.fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        return fleet

    @pytest.mark.parametrize("routing", ["least-loaded", "power-of-two"])
    def test_byte_identical_across_runs(self, routing):
        first = self._run(routing)
        second = self._run(routing)
        assert _summary_bytes(first) == _summary_bytes(second)
        assert first.summarize().finished > 0

    @pytest.mark.parametrize("routing", ["least-loaded", "power-of-two"])
    def test_chaos_actually_fired(self, routing):
        fleet = self._run(routing)
        stats = fleet.fleet_stats()
        assert stats["crashes"] == 1
        assert any(s.released for s in fleet._slots)
        assert stats["kv_blocks_resident"] == 0

    def test_perf_aware_homogeneous_matches_least_loaded(self):
        homogeneous = _summary_bytes(self._run("perf-aware"))
        assert homogeneous == _summary_bytes(self._run("least-loaded"))


class TestFleetDeterminism:
    def test_autoscaled_heterogeneous_run_is_byte_identical(self):
        def once():
            fleet = _fleet(
                config=_config(initial=("a100", "h100")),
                autoscaler=BurnRateAutoscaler(),
                plan=FaultPlan(
                    events=(
                        ReplicaCrash(
                            time=3.0, replica_id=0, recover_after=4.0
                        ),
                    )
                ),
            )
            fleet.submit_trace(_trace(n=150, qps=14.0).fresh_copy())
            fleet.run_until_drained(max_events=10_000_000)
            return _summary_bytes(fleet), fleet.fleet_stats()

        (bytes_a, stats_a), (bytes_b, stats_b) = once(), once()
        assert bytes_a == bytes_b
        assert json.dumps(stats_a, sort_keys=True) == json.dumps(
            stats_b, sort_keys=True
        )


class TestAutoscaling:
    def test_burn_rate_scales_up_under_sustained_overload(self):
        fleet = _fleet(
            config=_config(initial=("a100",)),
            autoscaler=BurnRateAutoscaler(),
        )
        fleet.submit_trace(_trace(n=400, qps=30.0).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        assert any(
            action == "provision"
            for _, action, _ in fleet.scaling_events
        )
        assert fleet.fleet_stats()["max_burn_rate"] > 0

    def test_burn_rate_drains_idle_fleet(self):
        fleet = _fleet(
            config=_config(initial=("a100",) * 4),
            autoscaler=BurnRateAutoscaler(),
        )
        fleet.submit_trace(_trace(n=60, qps=1.0).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        assert fleet.fleet_size < 4
        assert fleet.fleet_size >= fleet.fleet.min_replicas

    def test_busy_fraction_also_drains_idle_fleet(self):
        fleet = _fleet(
            config=_config(initial=("a100",) * 4),
            autoscaler=BusyFractionAutoscaler(),
        )
        fleet.submit_trace(_trace(n=20, qps=0.2).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        assert fleet.fleet_size < 4

    def test_static_fleet_never_resizes(self):
        fleet = _fleet(config=_config(initial=("a100",) * 3))
        fleet.submit_trace(_trace().fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        assert fleet.scaling_events == []
        assert fleet.fleet_size == 3

    def test_gpu_hours_accrue_per_hardware_price(self):
        fleet = _fleet(config=_config(initial=("a100", "h100")))
        fleet.submit_trace(_trace(n=40).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        stats = fleet.fleet_stats()
        assert stats["gpu_hours"] > 0
        # One a100 (1.0/h) + one h100 (2.5/h) for equal spans.
        assert stats["cost"] == pytest.approx(
            stats["gpu_hours"] * (1.0 + 2.5) / 2.0
        )

    def test_scale_down_respects_min_replicas(self):
        fleet = _fleet(
            config=_config(initial=("a100", "a100"), min_replicas=2),
            autoscaler=BurnRateAutoscaler(),
        )
        fleet.submit_trace(_trace(n=40, qps=1.0).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        assert fleet.fleet_size == 2


class TestChaosCoherence:
    def test_fault_on_unprovisioned_slot_is_skipped(self):
        plan = FaultPlan(
            events=(ReplicaCrash(time=1.0, replica_id=5),)
        )
        fleet = _fleet(config=_config(initial=("a100",)), plan=plan)
        fleet.submit_trace(_trace(n=30).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        stats = fleet.fleet_stats()
        assert stats["faults_skipped"] == 1
        assert stats["crashes"] == 0

    def test_arm_time_validation_rejects_out_of_bound_targets(self):
        plan = FaultPlan(
            events=(ReplicaCrash(time=1.0, replica_id=7),)
        )
        with pytest.raises(ValueError, match=r"replicas \[7\]"):
            _fleet(config=_config(initial=("a100",)), plan=plan)

    def test_fault_on_drained_replica_is_skipped(self):
        plan = FaultPlan(
            events=(ReplicaCrash(time=8.0, replica_id=2),)
        )
        fleet = _fleet(config=_config(), plan=plan)
        fleet.simulator.schedule(
            2.0, lambda: fleet._scale_down(fleet.simulator.now)
        )
        fleet.submit_trace(_trace(n=30, qps=2.0).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        stats = fleet.fleet_stats()
        assert stats["faults_skipped"] >= 1
        assert stats["crashes"] == 0

    def test_crashed_replica_frees_its_pool_slot(self):
        plan = FaultPlan(
            events=(ReplicaCrash(time=2.0, replica_id=0),)
        )
        fleet = _fleet(
            config=_config(initial=("a100", "a100"), max_replicas=2),
            autoscaler=BurnRateAutoscaler(),
            plan=plan,
        )
        fleet.submit_trace(_trace(n=300, qps=25.0).fresh_copy())
        fleet.run_until_drained(max_events=10_000_000)
        # The permanent crash does not occupy the 2-slot bound: a
        # replacement could be provisioned (occupancy counts healthy
        # + pending only).
        assert fleet._pool_occupancy() <= 2
        assert fleet.fleet_stats()["crashes"] == 1


class TestSessionIntegration:
    def test_session_drain_terminates_with_autoscaled_fleet(self):
        config = ServeConfig(
            fleet=_config(initial=("a100", "a100")),
            fleet_autoscaler="burn-rate",
        )
        session = Session(config)
        for request in _trace(n=50, qps=5.0):
            session.submit(request)
        now = session.drain(max_events=10_000_000)
        summary = session.summary()
        assert summary.finished == 50
        assert now > 0
        # Control loop parks but stays active for later submissions.
        assert session.fleet._control_active

    def test_empty_fleet_session_drains_instantly(self):
        session = Session(ServeConfig(fleet=_config()))
        # The only event is the first control tick, which parks.
        assert session.drain() == _config().control_interval


class TestParseFleetSpec:
    def test_parses_counts_and_defaults(self):
        config = parse_fleet_spec("a100:2,h100:1")
        assert config.initial == ("a100", "a100", "h100")
        assert config.max_replicas == 8

    def test_bare_class_name_means_one(self):
        assert parse_fleet_spec("h100").initial == ("h100",)

    def test_max_replicas_grows_to_fit_initial(self):
        config = parse_fleet_spec("a100:5", max_replicas=3)
        assert config.max_replicas == 5

    @pytest.mark.parametrize("spec", ["", "tpu:2", "a100:0", "a100:x"])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_fleet_spec(spec)

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetConfig(
                classes=(
                    HardwareClass("a100", A100_80GB),
                    HardwareClass("a100", A100_80GB),
                ),
                initial=("a100",),
            )
