"""Unit tests for the QoS-aware decode pools (extension)."""

import pytest

from repro.cluster.decode_pool import (
    PartitionedDecodePool,
    QoSSharedDecodePool,
    StrictSharedDecodePool,
    max_batch_for_tbt,
)
from repro.core.qos import QoSClass, QoSSpec
from repro.simcore import Simulator
from tests.conftest import make_request

STRICT = QoSSpec("QA", QoSClass.INTERACTIVE, ttft_slo=30.0, tbt_slo=0.020)
RELAXED = QoSSpec("QB", QoSClass.INTERACTIVE, ttft_slo=30.0, tbt_slo=0.100)


def prefilled(rid, prompt=1000, decode=20, qos=STRICT, arrival=0.0):
    r = make_request(
        request_id=rid, arrival_time=arrival, prompt_tokens=prompt,
        decode_tokens=decode, qos=qos,
    )
    r.prefill_done = prompt
    return r


class TestMaxBatchForTbt:
    def test_monotone_in_tbt(self, execution_model):
        tight = max_batch_for_tbt(execution_model, 0.015)
        loose = max_batch_for_tbt(execution_model, 0.100)
        assert loose > tight >= 1

    def test_respects_target(self, execution_model):
        cap = max_batch_for_tbt(execution_model, 0.030, avg_context=1500)
        assert execution_model.decode_batch_time(
            cap, cap * 1500
        ) <= 0.030

    def test_floor_of_one(self, execution_model):
        assert max_batch_for_tbt(
            execution_model, 1e-6, avg_context=1500
        ) == 1

    def test_validation(self, execution_model):
        with pytest.raises(ValueError):
            max_batch_for_tbt(execution_model, 0.0)


class TestStrictSharedPool:
    def test_serves_everything(self, execution_model):
        sim = Simulator()
        pool = StrictSharedDecodePool(
            sim, execution_model, num_replicas=2,
            strictest_tbt=STRICT.tbt_slo,
        )
        requests = [prefilled(i, qos=STRICT if i % 2 else RELAXED)
                    for i in range(12)]
        for r in requests:
            pool.accept(r, 0.0)
        sim.run(max_events=200_000)
        assert all(r.is_finished for r in requests)
        assert len(pool.all_requests()) == 12

    def test_queues_beyond_cap(self, execution_model):
        sim = Simulator()
        pool = StrictSharedDecodePool(
            sim, execution_model, num_replicas=1,
            strictest_tbt=0.012,  # tiny cap
        )
        requests = [prefilled(i, decode=100) for i in range(80)]
        for r in requests:
            pool.accept(r, 0.0)
        sim.run(max_events=2_000_000)
        assert all(r.is_finished for r in requests)


class TestPartitionedPool:
    def test_routes_by_class(self, execution_model):
        sim = Simulator()
        pool = PartitionedDecodePool(
            sim, execution_model,
            replicas_per_class={"QA": 1, "QB": 1},
            tbt_per_class={"QA": 0.020, "QB": 0.100},
        )
        strict = prefilled(1, qos=STRICT)
        relaxed = prefilled(2, qos=RELAXED)
        pool.accept(strict, 0.0)
        pool.accept(relaxed, 0.0)
        sim.run(max_events=100_000)
        qa_requests = pool.groups["QA"].all_requests()
        assert strict in qa_requests
        assert relaxed not in qa_requests

    def test_unknown_class_raises(self, execution_model):
        sim = Simulator()
        pool = PartitionedDecodePool(
            sim, execution_model,
            replicas_per_class={"QA": 1},
            tbt_per_class={"QA": 0.020},
        )
        with pytest.raises(KeyError):
            pool.accept(prefilled(1, qos=RELAXED), 0.0)

    def test_mismatched_maps_rejected(self, execution_model):
        with pytest.raises(ValueError):
            PartitionedDecodePool(
                Simulator(), execution_model,
                replicas_per_class={"QA": 1},
                tbt_per_class={"QB": 0.1},
            )


class TestQoSSharedPool:
    def test_pacing_respected(self, execution_model):
        sim = Simulator()
        pool = QoSSharedDecodePool(sim, execution_model, num_replicas=1)
        requests = [
            prefilled(i, decode=50, qos=STRICT if i % 2 else RELAXED)
            for i in range(20)
        ]
        for r in requests:
            pool.accept(r, 0.0)
        sim.run(max_events=1_000_000)
        assert all(r.is_finished for r in requests)
        strict_requests = [r for r in requests if r.qos is STRICT]
        total_misses = sum(r.tbt_gap_misses for r in strict_requests)
        total_gaps = sum(r.decoded - 1 for r in strict_requests)
        assert total_misses / max(1, total_gaps) < 0.02

    def test_lone_oversized_request_still_served(self, execution_model):
        """A request that cannot meet its TBT even alone is admitted
        best-effort rather than starved (the stall-bug regression)."""
        sim = Simulator()
        pool = QoSSharedDecodePool(sim, execution_model, num_replicas=1)
        impossible = prefilled(
            1, prompt=30_000, decode=5,
            qos=QoSSpec("QX", QoSClass.INTERACTIVE,
                        ttft_slo=30.0, tbt_slo=0.001),
        )
        pool.accept(impossible, 0.0)
        sim.run(max_events=100_000)
        assert impossible.is_finished

    def test_relaxed_only_batches_deeper(self, execution_model):
        """With only relaxed residents the pool admits more requests
        concurrently than the strictest-TBT static cap would."""
        strict_cap = max_batch_for_tbt(
            execution_model, STRICT.tbt_slo, avg_context=1000
        )
        sim = Simulator()
        pool = QoSSharedDecodePool(sim, execution_model, num_replicas=1)
        requests = [
            prefilled(i, prompt=1000, decode=400, qos=RELAXED)
            for i in range(strict_cap + 40)
        ]
        for r in requests:
            pool.accept(r, 0.0)
        # Step a little: admissions happen immediately at accept time.
        replica = pool.group.replicas[0]
        assert len(replica.decode_queue) > strict_cap
