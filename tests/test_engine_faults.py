"""Engine-level fault behaviour: crash, recover, slowdown, cancel."""

import pytest

from repro.engine import ReplicaConfig, ReplicaEngine
from repro.schedulers import FCFSScheduler
from repro.simcore import Simulator
from tests.conftest import Q2, make_request


def make_engine(execution_model):
    sim = Simulator()
    engine = ReplicaEngine(
        sim, execution_model, FCFSScheduler(chunk_size=256), ReplicaConfig()
    )
    return engine, sim


def mid_flight(execution_model, n=4):
    """An engine part-way through serving ``n`` requests."""
    engine, sim = make_engine(execution_model)
    requests = [
        make_request(request_id=i, prompt_tokens=600, decode_tokens=40)
        for i in range(n)
    ]
    for r in requests:
        engine.submit(r)
    sim.run(until=0.05)
    assert not all(r.is_finished for r in requests)
    return engine, sim, requests


class TestCrash:
    def test_crash_drops_kv_and_batch(self, execution_model):
        engine, sim, requests = mid_flight(execution_model)
        assert engine.kv_cache.used_blocks > 0
        lost = engine.crash()
        assert not engine.healthy
        assert engine.crash_count == 1
        assert engine.kv_cache.used_blocks == 0
        assert engine.decode_queue == []
        assert not engine.scheduler.has_pending_prefill()
        unfinished = [r for r in requests if not r.is_finished]
        assert sorted(r.request_id for r in lost) == sorted(
            r.request_id for r in unfinished
        )
        # Eviction semantics: generation state must recompute.
        for r in lost:
            assert r.prefill_done == 0
            assert r.evictions >= 1

    def test_crash_aborts_inflight_iteration(self, execution_model):
        engine, sim, _ = mid_flight(execution_model)
        iterations_before = engine.iterations_run
        engine.crash()
        sim.run()  # the cancelled end-of-iteration event must not fire
        assert engine.iterations_run == iterations_before

    def test_lost_order_is_deterministic(self, execution_model):
        def lost_ids():
            engine, sim, _ = mid_flight(execution_model)
            return [r.request_id for r in engine.crash()]

        first = lost_ids()
        assert first == lost_ids()
        assert first, "expected unfinished residents at crash time"

    def test_down_replica_rejects_dispatch(self, execution_model):
        engine, sim, _ = mid_flight(execution_model)
        engine.crash()
        with pytest.raises(RuntimeError, match="down"):
            engine.submit_now(make_request(request_id=99))

    def test_down_replica_drops_scheduled_arrivals(self, execution_model):
        engine, sim = make_engine(execution_model)
        late = make_request(request_id=1, arrival_time=10.0)
        engine.submit(late)
        engine.crash()
        sim.run()
        assert engine.dropped == [late]
        assert not late.is_finished

    def test_crash_spares_finished_requests(self, execution_model):
        engine, sim = make_engine(execution_model)
        done = make_request(request_id=0, prompt_tokens=200, decode_tokens=2)
        engine.submit(done)
        sim.run()
        assert done.is_finished
        assert engine.crash() == []


class TestRecover:
    def test_recover_resumes_service(self, execution_model):
        engine, sim, _ = mid_flight(execution_model)
        lost = engine.crash()
        engine.recover()
        assert engine.healthy
        for r in lost:
            engine.submit_now(r)
        sim.run()
        assert all(r.is_finished for r in lost)
        assert engine.kv_cache.used_blocks == 0

    def test_recover_on_healthy_engine_is_noop(self, execution_model):
        engine, _ = make_engine(execution_model)
        engine.recover()
        assert engine.healthy
        assert engine.crash_count == 0


class TestSlowdown:
    def test_straggler_stretches_completion(self, execution_model):
        def completion_time(factor):
            engine, sim = make_engine(execution_model)
            if factor != 1.0:
                engine.set_slowdown(factor)
            r = make_request(prompt_tokens=600, decode_tokens=30, qos=Q2)
            engine.submit(r)
            sim.run()
            assert r.is_finished
            return r.completion_time

        nominal = completion_time(1.0)
        slowed = completion_time(3.0)
        assert slowed == pytest.approx(3.0 * nominal, rel=1e-6)

    def test_restore_nominal_speed(self, execution_model):
        engine, _ = make_engine(execution_model)
        engine.set_slowdown(2.5)
        engine.set_slowdown(1.0)
        assert engine.slowdown_factor == 1.0

    def test_rejects_nonpositive_factor(self, execution_model):
        engine, _ = make_engine(execution_model)
        with pytest.raises(ValueError):
            engine.set_slowdown(0.0)
        with pytest.raises(ValueError):
            engine.set_slowdown(-2.0)


class TestCancelRequest:
    def test_cancel_resident_frees_kv(self, execution_model):
        engine, sim, requests = mid_flight(execution_model, n=2)
        victim = next(r for r in requests if not r.is_finished)
        held_before = engine.kv_cache.used_blocks
        assert engine.cancel_request(victim, "deadline") is True
        assert victim.cancelled
        assert victim.cancel_reason == "deadline"
        assert victim in engine.cancelled
        assert engine.kv_cache.used_blocks <= held_before
        assert engine.kv_cache.holding(victim.request_id) == 0
        sim.run()
        assert not victim.is_finished
        # The survivor is unaffected.
        others = [r for r in requests if r is not victim]
        assert all(r.is_finished for r in others)
        assert engine.kv_cache.used_blocks == 0

    def test_cancel_nonresident_returns_false(self, execution_model):
        engine, sim = make_engine(execution_model)
        stranger = make_request(request_id=77)
        assert engine.cancel_request(stranger, "deadline") is False
        assert stranger.cancelled  # still marked, just not resident

    def test_cancel_finished_is_refused(self, execution_model):
        engine, sim = make_engine(execution_model)
        r = make_request(prompt_tokens=200, decode_tokens=2)
        engine.submit(r)
        sim.run()
        assert r.is_finished
        assert engine.cancel_request(r, "deadline") is False
        assert not r.cancelled

    def test_cancelled_mid_iteration_work_is_discarded(self, execution_model):
        """Cancelling while a batch is in flight: the iteration
        completes but the cancelled request gains no progress."""
        engine, sim, requests = mid_flight(execution_model, n=3)
        victim = next(r for r in requests if not r.is_finished)
        progress = (victim.prefill_done, victim.decoded)
        engine.cancel_request(victim, "client-disconnect")
        sim.run()
        assert (victim.prefill_done, victim.decoded) == progress
