"""Unit tests for the shared scheduler machinery."""

import pytest

from repro.engine.interface import EngineView
from repro.engine.kvcache import KVCacheManager
from repro.schedulers.base import pack_prefill_assignments
from repro.schedulers.classic import FCFSScheduler
from tests.conftest import make_request


def make_view(execution_model, decode_requests=(), kv_tokens=100_000,
              max_slots=16, inflight=frozenset()):
    return EngineView(
        now=0.0,
        decode_requests=list(decode_requests),
        kv_cache=KVCacheManager(capacity_tokens=kv_tokens),
        execution_model=execution_model,
        max_decode_slots=max_slots,
        inflight_prefill_ids=inflight,
    )


class TestPacking:
    def test_packs_in_order_until_budget(self, execution_model):
        view = make_view(execution_model)
        a = make_request(request_id=1, prompt_tokens=200)
        b = make_request(request_id=2, prompt_tokens=200)
        assignments = pack_prefill_assignments([a, b], 256, view, 0.9)
        assert [(x.request.request_id, x.tokens) for x in assignments] == [
            (1, 200), (2, 56),
        ]

    def test_skips_completed_prefill(self, execution_model):
        view = make_view(execution_model)
        done = make_request(request_id=1, prompt_tokens=100)
        done.prefill_done = 100
        live = make_request(request_id=2, prompt_tokens=100)
        assignments = pack_prefill_assignments([done, live], 256, view, 0.9)
        assert [a.request.request_id for a in assignments] == [2]

    def test_dedupes_duplicate_entries(self, execution_model):
        view = make_view(execution_model)
        r = make_request(request_id=1, prompt_tokens=600)
        assignments = pack_prefill_assignments([r, r], 512, view, 0.9)
        assert len(assignments) == 1
        assert assignments[0].tokens == 512

    def test_respects_decode_slots(self, execution_model):
        decodes = [make_request(request_id=i) for i in range(15)]
        view = make_view(execution_model, decode_requests=decodes,
                         max_slots=16)
        new = [make_request(request_id=100 + i, prompt_tokens=50)
               for i in range(3)]
        assignments = pack_prefill_assignments(new, 256, view, 0.9)
        assert len(assignments) == 1  # only one free slot

    def test_inflight_requests_do_not_need_slots(self, execution_model):
        decodes = [make_request(request_id=i) for i in range(15)]
        inflight = make_request(request_id=50, prompt_tokens=600)
        inflight.prefill_done = 256
        view = make_view(
            execution_model, decode_requests=decodes, max_slots=16,
            inflight=frozenset({50, 99}),
        )
        # 15 decodes + 2 inflight = 17 > 16 slots: no new starts, but
        # the in-flight request keeps making progress.
        new = make_request(request_id=60, prompt_tokens=100)
        assignments = pack_prefill_assignments(
            [new, inflight], 256, view, 0.9
        )
        assert [a.request.request_id for a in assignments] == [50]

    def test_kv_watermark_blocks_new_starts(self, execution_model):
        view = make_view(execution_model, kv_tokens=1600)
        view.kv_cache.grow(999, 1500)  # 94% full
        new = make_request(request_id=1, prompt_tokens=50)
        assert pack_prefill_assignments([new], 256, view, 0.9) == []

    def test_kv_watermark_allows_inflight_progress(self, execution_model):
        view = make_view(
            execution_model, kv_tokens=1600, inflight=frozenset({1})
        )
        view.kv_cache.grow(999, 1440)
        inflight = make_request(request_id=1, prompt_tokens=600)
        inflight.prefill_done = 100
        assignments = pack_prefill_assignments([inflight], 256, view, 0.9)
        assert len(assignments) == 1

    def test_shrinks_to_fit_free_blocks(self, execution_model):
        view = make_view(execution_model, kv_tokens=1600)
        view.kv_cache.grow(999, 1280)  # 20 blocks used, 80% -> below 0.9
        r = make_request(request_id=1, prompt_tokens=600)
        assignments = pack_prefill_assignments([r], 600, view, 0.9)
        assert assignments[0].tokens == 320  # the 20 remaining blocks

    def test_empty_budget(self, execution_model):
        view = make_view(execution_model)
        r = make_request(request_id=1)
        assert pack_prefill_assignments([r], 0, view, 0.9) == []


class TestHeapQueue:
    def test_enqueue_and_pending(self, execution_model):
        scheduler = FCFSScheduler()
        assert not scheduler.has_pending_prefill()
        r = make_request(request_id=1)
        scheduler.enqueue(r, 0.0)
        assert scheduler.has_pending_prefill()
        assert scheduler.pending_requests() == [r]
        assert scheduler.queue_length() == 1

    def test_prefill_complete_removes(self):
        scheduler = FCFSScheduler()
        r = make_request(request_id=1)
        scheduler.enqueue(r, 0.0)
        scheduler.on_prefill_complete(r, 1.0)
        assert not scheduler.has_pending_prefill()

    def test_plan_orders_by_priority(self, execution_model):
        scheduler = FCFSScheduler(chunk_size=128)
        late = make_request(request_id=1, arrival_time=5.0,
                            prompt_tokens=500)
        early = make_request(request_id=2, arrival_time=1.0,
                             prompt_tokens=500)
        scheduler.enqueue(late, 5.0)
        scheduler.enqueue(early, 5.0)
        view = make_view(execution_model)
        assignments = scheduler.plan_prefill(view)
        assert assignments[0].request is early

    def test_requeue_preserves_untouched_entries(self, execution_model):
        scheduler = FCFSScheduler(chunk_size=64)
        requests = [
            make_request(request_id=i, arrival_time=float(i),
                         prompt_tokens=64)
            for i in range(5)
        ]
        for r in requests:
            scheduler.enqueue(r, r.arrival_time)
        view = make_view(execution_model)
        first = scheduler.plan_prefill(view)
        assert first[0].request.request_id == 0
        # Simulate the engine finishing request 0's prefill.
        requests[0].prefill_done = 64
        scheduler.on_prefill_complete(requests[0], 1.0)
        second = scheduler.plan_prefill(view)
        assert second[0].request.request_id == 1

    def test_chunk_budget_shrinks_with_decodes(self, execution_model):
        scheduler = FCFSScheduler(chunk_size=256)
        decodes = [make_request(request_id=i) for i in range(100)]
        view = make_view(execution_model, decode_requests=decodes,
                         max_slots=256)
        assert scheduler.prefill_token_budget(view) == 156

    def test_validation(self):
        with pytest.raises(ValueError):
            FCFSScheduler(chunk_size=0)
        with pytest.raises(ValueError):
            FCFSScheduler(kv_start_watermark=0.0)
