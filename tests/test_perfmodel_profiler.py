"""Unit tests for the Vidur-style profiling harness."""

import numpy as np
import pytest

from repro.perfmodel.execution import BatchShape, PrefillChunk
from repro.perfmodel.profiler import (
    FEATURE_NAMES,
    ProfileSample,
    Profiler,
    batch_features,
)


class TestProfiler:
    def test_collect_covers_grid(self, execution_model):
        profiler = Profiler(execution_model)
        samples = profiler.collect(
            chunk_sizes=(0, 128), batch_sizes=(0, 4), contexts=(0, 1024)
        )
        # (chunk, batch) pairs minus the empty-empty pair, times contexts.
        assert len(samples) == 3 * 2

    def test_empty_batch_skipped(self, execution_model):
        profiler = Profiler(execution_model)
        samples = profiler.collect(
            chunk_sizes=(0,), batch_sizes=(0, 1), contexts=(0,)
        )
        assert all(
            s.prefill_tokens > 0 or s.num_decodes > 0 for s in samples
        )

    def test_latencies_match_model(self, execution_model):
        profiler = Profiler(execution_model)
        samples = profiler.collect(
            chunk_sizes=(256,), batch_sizes=(8,), contexts=(1024,)
        )
        sample = samples[0]
        expected = execution_model.batch_time(
            BatchShape(
                [PrefillChunk(256, 1024)],
                num_decodes=8,
                decode_context_total=8 * 1024,
            )
        )
        assert sample.latency == pytest.approx(expected)

    def test_noise_requires_rng(self, execution_model):
        with pytest.raises(ValueError):
            Profiler(execution_model, noise_std=0.1)

    def test_noise_perturbs_latency(self, execution_model):
        rng = np.random.default_rng(0)
        noisy = Profiler(execution_model, noise_std=0.2, rng=rng)
        clean = Profiler(execution_model)
        grid = dict(chunk_sizes=(256,), batch_sizes=(8,), contexts=(1024,))
        a = noisy.collect(**grid)[0].latency
        b = clean.collect(**grid)[0].latency
        assert a != b
        assert a == pytest.approx(b, rel=1.0)  # same ballpark

    def test_to_arrays_shapes(self, execution_model):
        profiler = Profiler(execution_model)
        samples = profiler.collect(
            chunk_sizes=(0, 128), batch_sizes=(0, 4), contexts=(0, 512)
        )
        x, y = profiler.to_arrays(samples)
        assert x.shape == (len(samples), len(FEATURE_NAMES))
        assert y.shape == (len(samples),)
        assert (y > 0).all()

    def test_default_grid_size(self, execution_model):
        samples = Profiler(execution_model).collect()
        assert len(samples) > 1000


class TestFeatureLayout:
    def test_profile_sample_features(self):
        sample = ProfileSample(
            prefill_tokens=128,
            prefill_context_before=256,
            num_decodes=4,
            decode_context_total=4096,
            latency=0.01,
        )
        assert sample.features() == (128.0, 256.0, 4.0, 4096.0)

    def test_batch_features_match_sample_features(self):
        shape = BatchShape(
            [PrefillChunk(128, 256)], num_decodes=4, decode_context_total=4096
        )
        assert batch_features(shape) == (128.0, 256.0, 4.0, 4096.0)

    def test_batch_features_no_prefill(self):
        shape = BatchShape(num_decodes=2, decode_context_total=100)
        assert batch_features(shape) == (0.0, 0.0, 2.0, 100.0)
