"""Unit tests for trace events, sinks, the recorder and the schema."""

import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    ChunkSized,
    IterationScheduled,
    RequestCompleted,
    TraceSchemaError,
    validate_event,
)
from repro.obs.trace import (
    JSONLSink,
    ListSink,
    RingSink,
    TraceRecorder,
    read_jsonl_trace,
)


def iteration_event(ts=1.0, replica=0):
    return IterationScheduled(
        ts=ts, replica_id=replica, iteration=3, dur=0.05,
        prefill_tokens=256, num_prefills=1, num_decodes=4,
        decode_context_tokens=900, prefill_request_ids=(7,),
    )


class TestEvents:
    def test_to_dict_is_flat_and_typed(self):
        payload = iteration_event().to_dict()
        assert payload["kind"] == "iteration_scheduled"
        assert payload["ts"] == 1.0
        assert payload["prefill_request_ids"] == [7]
        # Round-trips through json without custom encoders.
        assert json.loads(json.dumps(payload)) == payload

    def test_non_finite_floats_become_null(self):
        event = ChunkSized(
            ts=0.0, chunk_budget=2500,
            latency_budget=float("inf"),
            predicted_latency=0.1, num_decodes=0,
        )
        assert event.to_dict()["latency_budget"] is None

    def test_every_kind_validates_its_own_serialization(self):
        samples = {
            "iteration_scheduled": iteration_event(),
            "chunk_sized": ChunkSized(
                ts=0.0, chunk_budget=32, latency_budget=0.02,
                predicted_latency=0.018, num_decodes=9,
            ),
            "request_completed": RequestCompleted(
                ts=9.0, replica_id=0, request_id=1, tier="Q1",
                arrival_time=0.5, scheduled_first_time=0.6,
                first_token_time=0.9, completion_time=9.0,
                relegated=False, violated=False, evictions=0,
            ),
        }
        for kind, event in samples.items():
            assert EVENT_TYPES[kind] is type(event)
            validate_event(event.to_dict())  # must not raise


class TestValidateEvent:
    def test_unknown_kind(self):
        with pytest.raises(TraceSchemaError, match="unknown event kind"):
            validate_event({"kind": "bogus", "ts": 0.0})

    def test_missing_field(self):
        payload = iteration_event().to_dict()
        del payload["dur"]
        with pytest.raises(TraceSchemaError, match="missing"):
            validate_event(payload)

    def test_extra_field(self):
        payload = iteration_event().to_dict()
        payload["surprise"] = 1
        with pytest.raises(TraceSchemaError, match="unexpected"):
            validate_event(payload)

    def test_wrong_type(self):
        payload = iteration_event().to_dict()
        payload["prefill_tokens"] = "lots"
        with pytest.raises(TraceSchemaError, match="expected"):
            validate_event(payload)

    def test_bool_is_not_an_int(self):
        payload = iteration_event().to_dict()
        payload["prefill_tokens"] = True
        with pytest.raises(TraceSchemaError, match="bool"):
            validate_event(payload)

    def test_non_finite_float_rejected(self):
        payload = iteration_event().to_dict()
        payload["dur"] = float("inf")
        with pytest.raises(TraceSchemaError, match="non-finite"):
            validate_event(payload)


class TestRingSink:
    def test_bounded_memory_and_drop_count(self):
        ring = RingSink(capacity=3)
        for i in range(5):
            ring.append({"i": i})
        assert [e["i"] for e in ring.events] == [2, 3, 4]
        assert ring.dropped == 2
        assert ring.appended == 5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingSink(capacity=0)

    def test_on_drop_callback_fires_per_shed_event(self):
        drops = []
        ring = RingSink(capacity=2, on_drop=lambda: drops.append(1))
        for i in range(5):
            ring.append({"i": i})
        assert len(drops) == 3
        assert ring.dropped == 3


class TestSchemaEvolution:
    def test_v1_payload_without_defaulted_fields_validates(self):
        """Fields added in schema v2 carry defaults; a v1 trace that
        lacks them must still validate (old traces stay valid)."""
        payload = iteration_event().to_dict()
        del payload["queue_depth"]  # v2 addition
        validate_event(payload)  # must not raise

        completed = RequestCompleted(
            ts=9.0, replica_id=0, request_id=1, tier="Q1",
            arrival_time=0.5, scheduled_first_time=0.6,
            first_token_time=0.9, completion_time=9.0,
            relegated=False, violated=False, evictions=0,
        ).to_dict()
        del completed["qos_class"]  # v2 addition
        validate_event(completed)  # must not raise

    def test_missing_required_field_still_rejected(self):
        payload = iteration_event().to_dict()
        del payload["dur"]  # no default: required in every version
        with pytest.raises(TraceSchemaError, match="missing"):
            validate_event(payload)

    def test_relegation_served_round_trips(self):
        from repro.obs.events import RelegationServed

        event = RelegationServed(
            ts=4.0, replica_id=1, request_id=9, tier="Q3",
            tokens=256, waited=1.5,
        )
        payload = event.to_dict()
        assert payload["kind"] == "relegation_served"
        validate_event(payload)  # registered in EVENT_TYPES


class TestJSONLSink:
    def test_one_compact_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JSONLSink(path) as sink:
            sink.append({"kind": "x", "ts": 1.0})
            sink.append({"kind": "y", "ts": 2.0})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert " " not in lines[0]  # compact separators
        assert json.loads(lines[1]) == {"kind": "y", "ts": 2.0}


class TestTraceRecorder:
    def test_fans_out_to_all_sinks_and_counts_kinds(self):
        a, b = ListSink(), ListSink()
        recorder = TraceRecorder([a, b])
        recorder.emit(iteration_event())
        recorder.emit(iteration_event(ts=2.0))
        assert len(a.events) == 2
        assert a.events == b.events
        assert recorder.counts["iteration_scheduled"] == 2
        assert recorder.total_events == 2

    def test_close_closes_sinks(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl")
        recorder = TraceRecorder([sink])
        recorder.emit(iteration_event())
        recorder.close()
        assert sink._file.closed


class TestReadJsonlTrace:
    def test_round_trip_with_validation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JSONLSink(path) as sink:
            TraceRecorder([sink]).emit(iteration_event())
        events = read_jsonl_trace(path, validate=True)
        assert len(events) == 1
        assert events[0]["kind"] == "iteration_scheduled"

    def test_invalid_json_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl_trace(path)

    def test_schema_violation_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "bogus", "ts": 0.0}\n')
        with pytest.raises(TraceSchemaError, match=":1:"):
            read_jsonl_trace(path, validate=True)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n{"kind": "x"}\n\n')
        assert len(read_jsonl_trace(path)) == 1
