"""Property-based tests for the KV-cache manager."""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.engine.kvcache import KVCacheManager


@given(
    block_size=st.integers(1, 64),
    grows=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 200)), max_size=50
    ),
)
def test_accounting_never_negative_and_bounded(block_size, grows):
    kv = KVCacheManager(capacity_tokens=64 * 200, block_size=block_size)
    for rid, tokens in grows:
        if kv.can_grow(rid, tokens):
            kv.grow(rid, tokens)
    assert 0 <= kv.used_blocks <= kv.capacity_blocks
    assert kv.used_tokens <= kv.used_blocks * kv.block_size


@given(
    tokens=st.integers(1, 1000),
    block_size=st.integers(1, 64),
)
def test_block_rounding_tight(tokens, block_size):
    """A single holding uses exactly ceil(tokens / block) blocks."""
    kv = KVCacheManager(capacity_tokens=100_000, block_size=block_size)
    kv.grow(1, tokens)
    assert kv.used_blocks == -(-tokens // block_size)


@given(
    pieces=st.lists(st.integers(1, 50), min_size=1, max_size=20),
)
def test_incremental_growth_equals_bulk(pieces):
    """Growing in pieces uses the same blocks as growing at once."""
    incremental = KVCacheManager(capacity_tokens=100_000, block_size=16)
    for piece in pieces:
        incremental.grow(1, piece)
    bulk = KVCacheManager(capacity_tokens=100_000, block_size=16)
    bulk.grow(1, sum(pieces))
    assert incremental.used_blocks == bulk.used_blocks
    assert incremental.holding(1) == bulk.holding(1)


class KVCacheMachine(RuleBasedStateMachine):
    """Stateful check: grow/release in any order preserves invariants."""

    def __init__(self):
        super().__init__()
        self.kv = KVCacheManager(capacity_tokens=4096, block_size=16)
        self.shadow: dict[int, int] = {}

    @rule(rid=st.integers(0, 5), tokens=st.integers(0, 300))
    def grow(self, rid, tokens):
        if self.kv.can_grow(rid, tokens):
            self.kv.grow(rid, tokens)
            self.shadow[rid] = self.shadow.get(rid, 0) + tokens

    @rule(rid=st.integers(0, 5))
    def release(self, rid):
        self.kv.release(rid)
        self.shadow.pop(rid, None)

    @invariant()
    def tokens_match_shadow(self):
        assert self.kv.used_tokens == sum(self.shadow.values())
        for rid, tokens in self.shadow.items():
            assert self.kv.holding(rid) == tokens

    @invariant()
    def blocks_bounded(self):
        assert 0 <= self.kv.used_blocks <= self.kv.capacity_blocks
        minimum_blocks = sum(
            -(-tokens // 16) for tokens in self.shadow.values()
        )
        assert self.kv.used_blocks == minimum_blocks


TestKVCacheStateful = KVCacheMachine.TestCase
TestKVCacheStateful.settings = settings(max_examples=30)
