"""Cluster-level integration tests across deployments and modes."""

import pytest

from repro.cluster.deployment import ClusterDeployment, SiloedDeployment, SiloSpec
from repro.cluster.disagg import DisaggregatedDeployment
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import build_trace, scheduler_factory
from repro.schedulers import QoServeConfig
from repro.workload.datasets import AZURE_CODE, AZURE_CONV


class TestSharedClusterAcrossDeployments:
    @pytest.mark.parametrize("deployment_name,expected_gpus", [
        ("llama3-8b", 2),
        ("qwen-7b", 4),      # TP2
        ("llama3-70b", 8),   # TP4
    ])
    def test_gpu_accounting(self, deployment_name, expected_gpus):
        em = get_execution_model(deployment_name)
        cluster = ClusterDeployment(
            em, scheduler_factory("fcfs", em), num_replicas=2
        )
        assert cluster.gpus_used == expected_gpus

    @pytest.mark.parametrize("deployment_name", ["qwen-7b", "llama3-70b"])
    def test_multireplica_qoserve_completes(self, deployment_name):
        em = get_execution_model(deployment_name)
        cluster = ClusterDeployment(
            em, scheduler_factory("qoserve-oracle", em), num_replicas=2
        )
        trace = build_trace(AZURE_CODE, qps=4.0, num_requests=80, seed=6)
        cluster.submit_trace(trace)
        cluster.run(max_events=20_000_000)
        summary = cluster.summarize()
        assert summary.finished == 80


class TestSiloVsSharedAtEqualGpus:
    def test_shared_beats_silo_under_pressure(self):
        """The paper's core capacity claim at miniature scale: with the
        same GPU count under a load the silo cannot balance, shared
        QoServe attains fewer violations."""
        em = get_execution_model("llama3-8b")
        trace = build_trace(AZURE_CODE, qps=6.0, num_requests=900, seed=8)

        silo = SiloedDeployment(
            em,
            silos=[
                SiloSpec(("Q1",), 1,
                         scheduler_factory("fcfs", em, chunk_size=256)),
                SiloSpec(("Q2",), 1,
                         scheduler_factory("fcfs", em, chunk_size=2048)),
                SiloSpec(("Q3",), 1,
                         scheduler_factory("fcfs", em, chunk_size=2048)),
            ],
        )
        silo.submit_trace(trace.fresh_copy())
        silo.run(max_events=50_000_000)
        silo_summary = silo.summarize()

        shared = ClusterDeployment(
            em, scheduler_factory("qoserve-oracle", em), num_replicas=3
        )
        shared.submit_trace(trace.fresh_copy())
        shared.run(max_events=50_000_000)
        shared_summary = shared.summarize()

        assert silo.gpus_used == shared.gpus_used == 3
        assert (
            shared_summary.violations.overall_pct
            <= silo_summary.violations.overall_pct
        )


class TestDisaggQoServeConfig:
    def test_qoserve_uses_large_chunk_on_prefill_nodes(self):
        em = get_execution_model("llama3-8b")
        deployment = DisaggregatedDeployment(
            em,
            scheduler_factory(
                "qoserve-oracle", em,
                qoserve_config=QoServeConfig(
                    max_chunk_size=8192, fixed_chunk_size=8192,
                    use_forest_predictor=False,
                ),
            ),
        )
        from tests.conftest import make_request

        r = make_request(prompt_tokens=6000, decode_tokens=5)
        deployment.submit(r)
        deployment.run()
        # 6000 tokens in a single 8K-budget iteration.
        assert deployment.replicas[0].iterations_run == 1
        assert r.is_finished

    def test_disagg_multireplica_round_robin(self):
        em = get_execution_model("llama3-8b")
        deployment = DisaggregatedDeployment(
            em, scheduler_factory("edf", em, chunk_size=8192),
            num_prefill_replicas=3,
        )
        trace = build_trace(AZURE_CONV, qps=3.0, num_requests=30, seed=9)
        deployment.submit_trace(trace)
        deployment.run()
        counts = [len(r.submitted) for r in deployment.replicas]
        assert counts == [10, 10, 10]
        assert len(deployment.decode_pool.completed) == 30
