"""In-process tests for the gateway's stdlib HTTP front end."""

import http.client
import json

import pytest

from repro.api import ServeConfig, Session
from repro.serve import (
    AdmissionConfig,
    GatewayConfig,
    GatewayHTTPServer,
    GatewayRuntime,
    ServeGateway,
)


@pytest.fixture
def served():
    """A gateway + HTTP server on an OS-assigned port; torn down clean."""
    session = Session(ServeConfig(scheduler="fcfs"))
    gateway = ServeGateway(
        session, config=GatewayConfig(speed=10_000.0)
    )
    runtime = GatewayRuntime(gateway)
    runtime.start()
    server = GatewayHTTPServer(("127.0.0.1", 0), runtime)
    server.start_background()
    try:
        yield gateway, server
    finally:
        server.stop()
        runtime.stop()
        assert not gateway.running


def _request(server, method, path, body=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=60
    )
    try:
        connection.request(
            method, path,
            body=json.dumps(body) if body is not None else None,
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, served):
        _, server = served
        status, body = _request(server, "GET", "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["speed"] == 10_000.0

    def test_completion_roundtrip(self, served):
        _, server = served
        status, body = _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 128, "max_tokens": 7, "tier": "Q1"},
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["finished"] is True
        assert payload["tokens"] == 7
        assert payload["tier"] == "Q1"
        assert payload["ttft_s"] > 0

    def test_streaming_token_counts(self, served):
        _, server = served
        status, body = _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 64, "max_tokens": 9, "tier": "Q2",
             "stream": True},
        )
        assert status == 200
        lines = [
            line[len(b"data: "):]
            for line in body.split(b"\n\n")
            if line.startswith(b"data: ")
        ]
        assert lines[-1] == b"[DONE]"
        tokens = [
            json.loads(line) for line in lines[:-1]
            if b"token_index" in line
        ]
        assert len(tokens) == 9
        assert [t["token_index"] for t in tokens] == list(range(1, 10))
        completion = json.loads(lines[-2])
        assert completion["finished"] is True

    def test_metrics_scrape(self, served):
        _, server = served
        _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 32, "max_tokens": 3},
        )
        status, body = _request(server, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_gateway_tokens_streamed_total" in text
        streamed = [
            line for line in text.splitlines()
            if line.startswith("repro_gateway_tokens_streamed_total{")
        ]
        assert streamed and any(
            float(line.rsplit(" ", 1)[1]) > 0 for line in streamed
        )

    def test_stats_counters(self, served):
        gateway, server = served
        _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 16, "max_tokens": 2},
        )
        status, body = _request(server, "GET", "/v1/stats")
        payload = json.loads(body)
        assert status == 200
        assert payload["admitted_total"] == gateway.stats.admitted_total
        assert payload["admitted_total"] >= 1

    def test_stats_carries_live_telemetry(self, served):
        gateway, server = served
        _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 16, "max_tokens": 2},
        )
        _, body = _request(server, "GET", "/v1/stats")
        payload = json.loads(body)
        # Old counter keys stay top-level; the live frame rides along.
        assert payload["admitted_total"] >= 1
        assert payload["speed"] == 10_000.0
        assert payload["queue_depth"] >= 0
        assert "Q1" in payload["goodput"]
        assert payload["goodput"]["Q1"]["offered"] >= 1

    def test_live_single_frame(self, served):
        gateway, server = served
        _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 16, "max_tokens": 2},
        )
        status, body = _request(server, "GET", "/v1/live?frames=1")
        assert status == 200
        frames = [
            json.loads(line[len(b"data: "):])
            for line in body.split(b"\n\n")
            if line.startswith(b"data: ")
        ]
        assert len(frames) == 1
        frame = frames[0]
        assert frame["virtual_now"] >= 0
        assert frame["gateway"]["admitted_total"] >= 1
        assert "goodput" in frame
        assert "token_bucket_fill" in frame

    def test_live_multiple_frames(self, served):
        _, server = served
        status, body = _request(
            server, "GET", "/v1/live?frames=3&interval=0.01"
        )
        assert status == 200
        frames = [
            json.loads(line[len(b"data: "):])
            for line in body.split(b"\n\n")
            if line.startswith(b"data: ")
        ]
        assert len(frames) == 3
        times = [f["virtual_now"] for f in frames]
        assert times == sorted(times)

    def test_live_rejects_bad_params(self, served):
        _, server = served
        for query in ("frames=-1", "interval=0", "frames=x"):
            status, body = _request(server, "GET", f"/v1/live?{query}")
            assert status == 400
            assert b"bad_request" in body

    def test_unknown_path_404(self, served):
        _, server = served
        status, _ = _request(server, "GET", "/nope")
        assert status == 404
        status, _ = _request(server, "POST", "/nope")
        assert status == 404

    def test_bad_request_400(self, served):
        _, server = served
        status, _ = _request(server, "POST", "/v1/completions", {})
        assert status == 400
        status, body = _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 8, "tier": "Q9"},
        )
        assert status == 400
        assert b"unknown tier" in body


class TestSessionFieldsOverHTTP:
    def test_chained_turns_hit_prefix_cache(self):
        session = Session(
            ServeConfig(scheduler="fcfs", kv_reuse="radix")
        )
        gateway = ServeGateway(
            session, config=GatewayConfig(speed=10_000.0)
        )
        runtime = GatewayRuntime(gateway)
        runtime.start()
        server = GatewayHTTPServer(("127.0.0.1", 0), runtime)
        server.start_background()
        try:
            first_ids = list(range(512))
            status, body = _request(
                server, "POST", "/v1/completions",
                {"prompt_tokens": 512, "max_tokens": 4, "tier": "Q2",
                 "token_ids": first_ids, "session_id": "conv-http"},
            )
            assert status == 200
            first = json.loads(body)
            assert first["finished"] is True
            # The follow-up turn extends the first prompt verbatim.
            status, body = _request(
                server, "POST", "/v1/completions",
                {"prompt_tokens": 640, "max_tokens": 4, "tier": "Q2",
                 "token_ids": first_ids + list(range(10_000, 10_128)),
                 "session_id": "conv-http",
                 "parent_request_id": first["request_id"]},
            )
            assert status == 200
            second = json.loads(body)
            assert second["finished"] is True
            state = gateway.request_state(second["request_id"])
            assert state.session_id == "conv-http"
            assert state.parent_request_id == first["request_id"]
            cache = session.engines[0].prefix_cache
            assert cache.hits == 1
            assert cache.hit_tokens >= 496  # whole blocks of 512 shared
            assert cache.total_refs() == 0
        finally:
            server.stop()
            runtime.stop()

    def test_malformed_session_fields_400(self, served):
        _, server = served
        status, body = _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 16, "max_tokens": 2,
             "token_ids": ["not-an-int"]},
        )
        assert status == 400
        assert b"bad_request" in body
        status, body = _request(
            server, "POST", "/v1/completions",
            {"prompt_tokens": 16, "max_tokens": 2,
             "parent_request_id": "zero"},
        )
        assert status == 400


class TestAdmissionOverHTTP:
    def test_rate_limited_429(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        gateway = ServeGateway(
            session,
            config=GatewayConfig(
                speed=10_000.0,
                admission=AdmissionConfig(rate=1e-9, burst=1.0),
            ),
        )
        runtime = GatewayRuntime(gateway)
        runtime.start()
        server = GatewayHTTPServer(("127.0.0.1", 0), runtime)
        server.start_background()
        try:
            first, _ = _request(
                server, "POST", "/v1/completions",
                {"prompt_tokens": 16, "max_tokens": 2},
            )
            second, body = _request(
                server, "POST", "/v1/completions",
                {"prompt_tokens": 16, "max_tokens": 2},
            )
            assert first == 200
            assert second == 429
            payload = json.loads(body)
            assert payload["reason"] == "rate_limit"
            assert gateway.stats.shed_total == 1
        finally:
            server.stop()
            runtime.stop()
