"""Unit tests for hybrid prioritization (Eqs. 4-5)."""

import pytest

from repro.core.decode_estimator import OracleDecodeEstimator
from repro.core.priority import MS_PER_TOKEN, HybridPriority, LoadAdaptiveAlpha
from tests.conftest import Q1, Q2, make_request


class TestHybridScore:
    def test_alpha_zero_is_edf(self):
        hp = HybridPriority(alpha=0.0)
        short = make_request(arrival_time=10.0, prompt_tokens=10, qos=Q1)
        long = make_request(arrival_time=5.0, prompt_tokens=99999, qos=Q1)
        # Pure EDF: earlier arrival (deadline) wins despite huge prompt.
        assert hp.score(long) < hp.score(short)

    def test_eq4_interactive_formula(self):
        hp = HybridPriority(alpha=8 * MS_PER_TOKEN)
        r = make_request(arrival_time=2.0, prompt_tokens=1000, qos=Q1)
        # P = arrival + TTFT + alpha * prefill_remaining
        assert hp.score(r) == pytest.approx(2.0 + 6.0 + 0.008 * 1000)

    def test_eq4_uses_remaining_not_total(self):
        hp = HybridPriority(alpha=8 * MS_PER_TOKEN)
        r = make_request(prompt_tokens=1000, qos=Q1)
        before = hp.score(r)
        r.prefill_done = 600
        assert hp.score(r) == pytest.approx(before - 0.008 * 600)

    def test_eq5_non_interactive_includes_decode(self):
        hp = HybridPriority(
            alpha=8 * MS_PER_TOKEN,
            decode_estimator=OracleDecodeEstimator(),
        )
        r = make_request(
            arrival_time=0.0, prompt_tokens=100, decode_tokens=400, qos=Q2
        )
        assert hp.score(r) == pytest.approx(600.0 + 0.008 * (100 + 400))

    def test_eq5_decode_progress_reduces_work(self):
        hp = HybridPriority(
            alpha=8 * MS_PER_TOKEN,
            decode_estimator=OracleDecodeEstimator(),
        )
        r = make_request(prompt_tokens=100, decode_tokens=400, qos=Q2)
        r.prefill_done = 100
        r.decoded = 100
        assert hp.score(r) == pytest.approx(600.0 + 0.008 * 300)

    def test_no_estimator_ignores_decode(self):
        hp = HybridPriority(alpha=8 * MS_PER_TOKEN)
        r = make_request(prompt_tokens=100, decode_tokens=9999, qos=Q2)
        assert hp.score(r) == pytest.approx(600.0 + 0.008 * 100)

    def test_large_alpha_prefers_short_jobs(self):
        hp = HybridPriority(alpha=50 * MS_PER_TOKEN)
        short = make_request(arrival_time=10.0, prompt_tokens=100, qos=Q1)
        long = make_request(arrival_time=0.0, prompt_tokens=8000, qos=Q1)
        assert hp.score(short) < hp.score(long)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            HybridPriority(alpha=-1.0)


class TestLoadAdaptiveAlpha:
    def test_low_pressure_gives_alpha_low(self):
        adaptive = LoadAdaptiveAlpha()
        for _ in range(50):
            adaptive.update(0.0)
        assert adaptive.alpha == pytest.approx(1 * MS_PER_TOKEN)

    def test_high_pressure_gives_alpha_high(self):
        adaptive = LoadAdaptiveAlpha()
        for _ in range(200):
            adaptive.update(10.0)
        assert adaptive.alpha == pytest.approx(8 * MS_PER_TOKEN)

    def test_interpolates_between(self):
        adaptive = LoadAdaptiveAlpha(
            pressure_low=0.0, pressure_high=2.0, smoothing=1.0
        )
        adaptive.update(1.0)
        expected = 0.5 * (1 + 8) * MS_PER_TOKEN
        assert adaptive.alpha == pytest.approx(expected)

    def test_smoothing_damps_spikes(self):
        adaptive = LoadAdaptiveAlpha(smoothing=0.1)
        adaptive.update(100.0)
        assert adaptive.pressure == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadAdaptiveAlpha(alpha_low=2.0, alpha_high=1.0)
        with pytest.raises(ValueError):
            LoadAdaptiveAlpha(pressure_low=2.0, pressure_high=1.0)
        with pytest.raises(ValueError):
            LoadAdaptiveAlpha(smoothing=0.0)
        with pytest.raises(ValueError):
            LoadAdaptiveAlpha().update(-1.0)
