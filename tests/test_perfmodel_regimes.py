"""Regime-boundary tests for the execution model.

The scheduler's whole premise is the asymmetry between compute-bound
prefill and memory-bound decode; these tests pin that structure, not
just point values.
"""

import pytest

from repro.perfmodel import (
    A100_80GB,
    LLAMA3_8B,
    BatchShape,
    ExecutionModel,
    PrefillChunk,
)


@pytest.fixture(scope="module")
def em():
    return ExecutionModel(LLAMA3_8B, A100_80GB)


class TestDecodeRegime:
    def test_single_decode_near_weight_floor(self, em):
        """One decode token is bandwidth-bound: its iteration sits
        within ~2x of the weight-streaming floor plus overhead."""
        floor = LLAMA3_8B.weight_bytes() / A100_80GB.mem_bandwidth
        t = em.decode_batch_time(1, 1024)
        assert t < 2.0 * (floor + em.overhead)

    def test_decode_batching_amortizes_weights(self, em):
        """64 decodes cost far less than 64x one decode."""
        one = em.decode_batch_time(1, 1024)
        batch = em.decode_batch_time(64, 64 * 1024)
        assert batch < 8 * one

    def test_decode_cost_linear_in_kv(self, em):
        """Beyond the weight floor, decode time grows with KV read."""
        base = em.decode_batch_time(64, 64 * 512)
        double = em.decode_batch_time(64, 64 * 1024)
        quad = em.decode_batch_time(64, 64 * 2048)
        assert (quad - double) == pytest.approx(
            2 * (double - base), rel=0.2
        )


class TestPrefillRegime:
    def test_prefill_tokens_cost_more_than_decode_tokens(self, em):
        """Adding 256 prefill tokens to a batch costs more than adding
        256 decode tokens (GEMM at degraded MFU vs riding the weight
        stream) — the asymmetry chunking exploits."""
        base = em.decode_batch_time(32, 32 * 1024)
        with_prefill = em.batch_time(
            BatchShape([PrefillChunk(256, 0)], 32, 32 * 1024)
        )
        with_decodes = em.decode_batch_time(32 + 256, 32 * 1024 + 256)
        assert with_prefill - base > with_decodes - base

    def test_attention_grows_with_context_position(self, em):
        """Equal-size chunks get costlier deeper into the prompt (the
        effect Medha's shrinking chunks respond to)."""
        costs = [
            em.batch_time(BatchShape([PrefillChunk(1024, c)]))
            for c in (0, 8192, 32768, 65536)
        ]
        deltas = [b - a for a, b in zip(costs, costs[1:])]
        assert all(d > 0 for d in deltas)
        # Quadratic attention: marginal cost grows with position...
        # linearly, so equal context steps give roughly equal deltas
        # scaled by step size; the later (bigger) steps dominate.
        assert deltas[-1] > deltas[0]

    def test_two_small_chunks_cost_no_less_than_one_big(self, em):
        one = em.batch_time(BatchShape([PrefillChunk(1024, 0)]))
        split = em.batch_time(
            BatchShape([PrefillChunk(512, 0), PrefillChunk(512, 0)])
        )
        # Same tokens in one iteration: splitting across requests may
        # differ in attention but not catastrophically.
        assert split == pytest.approx(one, rel=0.25)


class TestMixedBatches:
    def test_mixed_batch_at_most_sum_of_parts(self, em):
        """Fusing prefill and decode into one iteration is the whole
        point of chunked prefill: it must beat running them apart."""
        prefill_only = em.batch_time(BatchShape([PrefillChunk(512, 0)]))
        decode_only = em.decode_batch_time(64, 64 * 1500)
        fused = em.batch_time(
            BatchShape([PrefillChunk(512, 0)], 64, 64 * 1500)
        )
        assert fused < prefill_only + decode_only

    def test_decode_riders_are_cheap(self, em):
        """Decodes added to a prefill-bound batch cost little extra —
        the 'piggybacking decodes' of the Sarathi design."""
        alone = em.batch_time(BatchShape([PrefillChunk(2048, 0)]))
        ridden = em.batch_time(
            BatchShape([PrefillChunk(2048, 0)], 32, 32 * 1024)
        )
        assert ridden < alone * 1.25
