"""Schema-compat regression: v1-v5 traces stay valid under v6.

Every schema bump so far added defaulted fields or new kinds only, so
traces written by older tooling must keep validating, auditing and
building span trees.  These tests pin that contract with hand-built
events frozen at each historical version's vocabulary — including the
v5 fleet vocabulary (``fault_skipped`` / ``fleet_resized``) from the
heterogeneous-fleet PR and the v6 ``prefix_hit`` kind from the radix
KV-reuse PR.
"""

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    audit_events,
    build_span_trees,
    validate_event,
)

# --- events exactly as each schema version would have written them --------

V1_EVENTS = [
    # v1 iteration_scheduled: no queue_depth yet.
    {
        "kind": "iteration_scheduled", "ts": 1.0, "replica_id": 0,
        "iteration": 0, "dur": 0.5, "prefill_tokens": 512,
        "num_prefills": 1, "num_decodes": 0,
        "decode_context_tokens": 0, "prefill_request_ids": [1],
    },
    # v1 request_completed: no qos_class yet.
    {
        "kind": "request_completed", "ts": 2.0, "replica_id": 0,
        "request_id": 1, "tier": "Q1", "arrival_time": 0.0,
        "scheduled_first_time": 1.0, "first_token_time": 1.5,
        "completion_time": 2.0, "relegated": False, "violated": False,
        "evictions": 0,
    },
]

V2_EVENTS = [
    {**V1_EVENTS[0], "queue_depth": 3},
    {
        "kind": "relegation_served", "ts": 1.2, "replica_id": 0,
        "request_id": 1, "tier": "Q1", "tokens": 512, "waited": 1.2,
    },
    {**V1_EVENTS[1], "qos_class": "interactive"},
]

V3_EVENTS = [
    {
        "kind": "gateway_admitted", "ts": 0.0, "request_id": 1,
        "tier": "Q1", "important": True, "queue_depth": 0,
    },
    {
        "kind": "gateway_shed", "ts": 0.1, "request_id": 2,
        "tier": "Q3", "important": False, "reason": "rate_limit",
        "queue_depth": 5,
    },
    *V2_EVENTS,
]

V4_EVENTS = [
    {
        "kind": "span_start", "ts": 0.2, "name": "queue",
        "request_id": 1, "replica_id": 0, "tier": "Q1",
    },
    {
        "kind": "span_end", "ts": 1.0, "name": "queue",
        "request_id": 1, "replica_id": 0, "tier": "Q1",
    },
    *V3_EVENTS,
]

V5_EVENTS = [
    {
        "kind": "fault_skipped", "ts": 0.3, "replica_id": 7,
        "fault_kind": "crash", "reason": "not_provisioned",
    },
    {
        "kind": "fleet_resized", "ts": 0.4, "action": "provision",
        "replica_id": -1, "hardware": "h100", "fleet_size": 3,
        "reason": "",
    },
    *V4_EVENTS,
]

V6_EVENTS = [
    {
        "kind": "prefix_hit", "ts": 0.2, "replica_id": 0,
        "request_id": 9, "tier": "Q1", "hit_tokens": 64,
        "prompt_tokens": 200, "cached_tokens": 512,
    },
    *V5_EVENTS,
]

VERSIONED = {
    1: V1_EVENTS, 2: V2_EVENTS, 3: V3_EVENTS, 4: V4_EVENTS,
    5: V5_EVENTS, 6: V6_EVENTS,
}


class TestBackwardCompat:
    def test_current_version(self):
        assert TRACE_SCHEMA_VERSION == 6

    @pytest.mark.parametrize("version", sorted(VERSIONED))
    def test_old_traces_validate(self, version):
        for event in VERSIONED[version]:
            validate_event(event)

    @pytest.mark.parametrize("version", sorted(VERSIONED))
    def test_old_traces_audit(self, version):
        report = audit_events(VERSIONED[version])
        [audit] = report.requests
        assert audit.request_id == 1
        assert audit.conservation_error < 1e-9

    @pytest.mark.parametrize("version", sorted(VERSIONED))
    def test_old_traces_build_span_trees(self, version):
        [tree] = build_span_trees(VERSIONED[version])
        assert tree.request_id == 1
        lifecycle = [
            s for s in tree.walk() if s.category == "lifecycle"
        ]
        # The overlay only exists where v4 markers exist.
        assert bool(lifecycle) == (version >= 4)

    def test_v1_defaults_are_filled_in(self):
        """Consumers see the v2+ defaults on v1 events."""
        report = audit_events(V1_EVENTS)
        [audit] = report.requests
        assert audit.qos_class == ""


class TestStrictness:
    def test_unknown_field_still_rejected(self):
        event = {**V4_EVENTS[0], "surprise": 1}
        with pytest.raises(TraceSchemaError, match="unexpected fields"):
            validate_event(event)

    def test_missing_required_field_still_rejected(self):
        event = dict(V4_EVENTS[0])
        del event["request_id"]
        with pytest.raises(TraceSchemaError, match="request_id"):
            validate_event(event)

    def test_span_kind_type_checks(self):
        event = {**V4_EVENTS[0], "name": 42}
        with pytest.raises(TraceSchemaError):
            validate_event(event)


class TestV5Strictness:
    """The fleet vocabulary validates as strictly as the older kinds."""

    def test_fault_skipped_requires_reason(self):
        event = dict(V5_EVENTS[0])
        del event["reason"]
        with pytest.raises(TraceSchemaError, match="reason"):
            validate_event(event)

    def test_fault_skipped_type_checked(self):
        with pytest.raises(TraceSchemaError):
            validate_event({**V5_EVENTS[0], "replica_id": "seven"})

    def test_fault_skipped_rejects_unknown_field(self):
        with pytest.raises(TraceSchemaError, match="unexpected fields"):
            validate_event({**V5_EVENTS[0], "target": 7})

    def test_fleet_resized_requires_fleet_size(self):
        event = dict(V5_EVENTS[1])
        del event["fleet_size"]
        with pytest.raises(TraceSchemaError, match="fleet_size"):
            validate_event(event)

    def test_fleet_resized_action_type_checked(self):
        with pytest.raises(TraceSchemaError):
            validate_event({**V5_EVENTS[1], "action": 1})

    def test_fleet_resized_reason_defaults(self):
        # ``reason`` was introduced defaulted, so fleet events written
        # without it stay valid (the v1-style compat guarantee applied
        # within v5 itself).
        event = dict(V5_EVENTS[1])
        del event["reason"]
        validate_event(event)

    def test_v5_events_ignored_by_audit_and_diff(self):
        # Fleet bookkeeping must not perturb request forensics: the
        # audit skips the new kinds, and diffing a v5 trace against
        # its fleet-event-free projection still aligns every request
        # (the divergence is the fleet events themselves).
        from repro.obs import diff_runs

        v4_only = [
            e for e in V5_EVENTS
            if e["kind"] not in ("fault_skipped", "fleet_resized")
        ]
        diff = diff_runs(V5_EVENTS, v4_only)
        assert diff.aligned == 1
        assert not diff.only_base and not diff.only_other
        assert diff.goodput["good_delta"] == 0
        assert diff.first_divergence is not None
        assert diff.first_divergence.index == 0
