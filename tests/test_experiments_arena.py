"""The policy arena: ranking, loss attribution, --jobs determinism."""

import json

import pytest

from repro.experiments.arena import ALL_SCHEMES, run
from repro.experiments.configs import Scale

TINY = Scale(num_requests=24, seed=5, label="arena-tiny")
SCHEMES = ("qoserve", "fcfs", "medha")
LOADS = (4.0, 6.0)


@pytest.fixture(scope="module")
def result():
    return run(TINY, schemes=SCHEMES, loads=LOADS)


class TestArena:
    def test_ranked_by_goodput(self, result):
        assert [row["rank"] for row in result.rows] == [1, 2, 3]
        goodputs = [row["goodput_pct"] for row in result.rows]
        assert goodputs == sorted(goodputs, reverse=True)
        assert {row["scheme"] for row in result.rows} == set(SCHEMES)

    def test_row_accounting(self, result):
        for row in result.rows:
            assert row["good"] == row["completed"] - row["violated"]
            assert row["completed"] == TINY.num_requests * len(LOADS)
        winner = result.rows[0]
        assert winner["gap_pp"] == 0.0
        assert winner["top_loss_cause"] == "-"

    def test_losses_explained(self, result):
        winner = result.rows[0]["scheme"]
        losers_behind = [
            row for row in result.rows[1:] if row["gap_pp"] > 0
        ]
        assert losers_behind, "tiny arena should separate schedulers"
        for row in losers_behind:
            assert row["top_loss_cause"] != "-"
            assert 0.0 < row["loss_share_pct"] <= 100.0
            sentence = next(
                note for note in result.notes
                if note.startswith(f"{row['scheme']} loses")
            )
            assert winner in sentence
            assert row["top_loss_cause"] in sentence

    def test_cause_deltas_cover_gap(self, result):
        # The summed cause deltas reproduce each loser's good-request
        # gap to the winner exactly (the diff conservation identity,
        # summed over loads).
        by_scheme = {row["scheme"]: row for row in result.rows}
        winner_good = result.rows[0]["good"]
        for scheme, causes in result.extras["cause_deltas"].items():
            assert sum(causes.values()) == (
                by_scheme[scheme]["good"] - winner_good
            )

    def test_divergence_and_sketches_present(self, result):
        for scheme, index in result.extras["first_divergence"].items():
            assert index is None or index >= 0
        for key, named in (
            result.extras["phase_delta_sketches"].items()
        ):
            scheme, tier = key.split("/")
            assert scheme in SCHEMES and tier.startswith("Q")
            assert "ttlt" in named

    def test_serial_vs_jobs_byte_identical(self, result):
        parallel = run(TINY, schemes=SCHEMES, loads=LOADS, jobs=2)
        assert parallel.rows == result.rows
        assert parallel.notes == result.notes
        assert (
            parallel.extras["cause_deltas"]
            == result.extras["cause_deltas"]
        )
        serialize = lambda extras: json.dumps(  # noqa: E731
            {
                key: {n: s.to_dict() for n, s in named.items()}
                for key, named in extras.items()
            },
            sort_keys=True,
        )
        assert serialize(
            parallel.extras["phase_delta_sketches"]
        ) == serialize(result.extras["phase_delta_sketches"])

    def test_renders(self, result):
        text = result.render()
        assert "rank" in text and "top_loss_cause" in text

    def test_all_schemes_registered(self):
        # The arena races the full registry by default, so new
        # schedulers are judged the moment they are registered.
        assert set(SCHEMES) <= set(ALL_SCHEMES)
        assert "qoserve" in ALL_SCHEMES and "conserve" in ALL_SCHEMES
