"""Unit tests for the experiment runner utilities."""

import pytest

from repro.experiments.configs import (
    DEPLOYMENTS,
    SMOKE,
    Scale,
    get_execution_model,
)
from repro.experiments.runner import (
    SCHEDULER_KINDS,
    build_trace,
    goodput_search,
    make_scheduler,
    run_replica_trace,
)
from repro.schedulers import (
    EDFScheduler,
    FCFSScheduler,
    MedhaScheduler,
    QoServeScheduler,
    SJFScheduler,
    SRPFScheduler,
)
from repro.workload.datasets import AZURE_CODE


class TestMakeScheduler:
    @pytest.mark.parametrize("kind,cls", [
        ("fcfs", FCFSScheduler),
        ("sjf", SJFScheduler),
        ("srpf", SRPFScheduler),
        ("edf", EDFScheduler),
        ("medha", MedhaScheduler),
    ])
    def test_kinds(self, execution_model, kind, cls):
        assert isinstance(make_scheduler(kind, execution_model), cls)

    def test_qoserve_oracle(self, execution_model):
        scheduler = make_scheduler("qoserve-oracle", execution_model)
        assert isinstance(scheduler, QoServeScheduler)
        from repro.core.predictor import OracleBatchPredictor
        assert isinstance(scheduler.predictor, OracleBatchPredictor)

    def test_sarathi_prefix_tolerated(self, execution_model):
        assert isinstance(
            make_scheduler("Sarathi-FCFS", execution_model), FCFSScheduler
        )

    def test_chunk_size_forwarded(self, execution_model):
        scheduler = make_scheduler("fcfs", execution_model, chunk_size=2048)
        assert scheduler.chunk_size == 2048

    def test_unknown_kind(self, execution_model):
        with pytest.raises(KeyError):
            make_scheduler("lifo", execution_model)

    def test_all_kinds_constructible(self, execution_model,
                                     forest_predictor):
        for kind in SCHEDULER_KINDS:
            make_scheduler(kind, execution_model)


class TestConfigs:
    def test_table1_deployments(self):
        assert set(DEPLOYMENTS) == {"llama3-8b", "qwen-7b", "llama3-70b"}
        assert DEPLOYMENTS["qwen-7b"].tp_degree == 2
        assert DEPLOYMENTS["llama3-70b"].tp_degree == 4

    def test_execution_model_cached(self):
        assert get_execution_model("llama3-8b") is get_execution_model(
            "llama3-8b"
        )

    def test_unknown_deployment(self):
        with pytest.raises(KeyError):
            get_execution_model("gpt-5")

    def test_scale_requests_for(self):
        scale = Scale(num_requests=100, min_duration_s=60.0)
        assert scale.requests_for(1.0) == 100
        assert scale.requests_for(10.0) == 600


class TestRunHelpers:
    def test_build_trace_composition(self):
        trace = build_trace(AZURE_CODE, qps=2.0, num_requests=300, seed=1)
        names = {r.qos.name for r in trace}
        assert names == {"Q1", "Q2", "Q3"}

    def test_run_replica_trace_drains(self, execution_model):
        trace = build_trace(AZURE_CODE, qps=2.0, num_requests=40, seed=1)
        summary, engine = run_replica_trace(
            execution_model, make_scheduler("fcfs", execution_model), trace
        )
        assert summary.finished == 40
        assert summary.arrival_span > 0
        assert summary.drain_time >= 0

    def test_goodput_search_returns_positive(self, execution_model):
        result = goodput_search(
            "fcfs", execution_model, AZURE_CODE,
            num_requests=SMOKE.num_requests, seed=7, qps_high=8.0,
            tolerance=0.5,
        )
        assert result.max_qps > 0.5
        assert result.evaluations
