"""Unit tests for model and hardware specifications."""

import pytest

from repro.perfmodel import (
    A100_80GB,
    H100_80GB,
    LLAMA3_70B,
    LLAMA3_8B,
    QWEN_7B,
)
from repro.perfmodel.modelspec import ModelSpec


class TestModelSpecs:
    def test_llama3_8b_parameter_count(self):
        """Weight bytes should land near the well-known ~16 GB bf16."""
        gb = LLAMA3_8B.weight_bytes() / 1e9
        assert 14.0 <= gb <= 18.0

    def test_llama3_70b_parameter_count(self):
        gb = LLAMA3_70B.weight_bytes() / 1e9
        assert 130.0 <= gb <= 150.0

    def test_gqa_reduces_kv_bytes(self):
        """Qwen-7B (MHA) stores 4x the KV of Llama3-8B (GQA 32/8)."""
        ratio = QWEN_7B.kv_bytes_per_token() / LLAMA3_8B.kv_bytes_per_token()
        assert ratio == pytest.approx(4.0)

    def test_head_dim(self):
        assert LLAMA3_8B.head_dim == 128
        assert LLAMA3_70B.head_dim == 128

    def test_kv_dim_mha_equals_hidden(self):
        assert QWEN_7B.kv_dim == QWEN_7B.hidden_size

    def test_linear_flops_scale_with_depth(self):
        shallow = ModelSpec(
            name="x", num_layers=16, hidden_size=4096,
            intermediate_size=14336, num_q_heads=32, num_kv_heads=8,
            vocab_size=128256,
        )
        assert (
            LLAMA3_8B.linear_flops_per_token()
            > shallow.linear_flops_per_token()
        )

    def test_llama3_8b_flops_per_token_order_of_magnitude(self):
        """~2 * 7.5B FLOPs/token for the 8B model's linear layers."""
        flops = LLAMA3_8B.linear_flops_per_token()
        assert 1.2e10 <= flops <= 1.8e10


class TestHardwareSpecs:
    def test_a100_peaks(self):
        assert A100_80GB.peak_flops == pytest.approx(312e12)
        assert A100_80GB.mem_capacity == pytest.approx(80e9)

    def test_h100_faster_than_a100(self):
        assert H100_80GB.peak_flops > A100_80GB.peak_flops
        assert H100_80GB.mem_bandwidth > A100_80GB.mem_bandwidth

    def test_overhead_grows_with_tp(self):
        assert A100_80GB.overhead(4) > A100_80GB.overhead(1)

    def test_overhead_tp1_is_base(self):
        assert A100_80GB.overhead(1) == A100_80GB.base_overhead
