"""Decode-heavy workload coverage (ShareGPT-shaped).

AzCode exercises the prefill path; these runs stress the opposite
regime — hundreds of output tokens per request — where decode slots,
KV growth and TTLT pacing dominate scheduling.
"""

import pytest

from repro.experiments.configs import get_execution_model
from repro.experiments.runner import build_trace, make_scheduler, run_replica_trace
from repro.workload.datasets import SHAREGPT


@pytest.fixture(scope="module")
def em():
    return get_execution_model("llama3-8b")


@pytest.fixture(scope="module")
def trace():
    return build_trace(SHAREGPT, qps=1.0, num_requests=500, seed=17)


class TestDecodeHeavyRegime:
    @pytest.mark.parametrize("scheme", ["fcfs", "edf", "qoserve-oracle"])
    def test_completes_at_moderate_load(self, em, trace, scheme):
        scaled = trace.scaled_arrivals(1.5)
        summary, engine = run_replica_trace(
            em, make_scheduler(scheme, em), scaled
        )
        assert summary.finished == len(scaled)
        assert engine.kv_cache.used_blocks == 0

    def test_decode_queue_grows_deep(self, em, trace):
        """ShareGPT's long decodes keep many requests resident — the
        mixed batches the execution model's decode terms exist for."""
        scaled = trace.scaled_arrivals(2.0)
        _, engine = run_replica_trace(
            em, make_scheduler("qoserve-oracle", em), scaled,
            record_iterations=True,
        )
        peak_decodes = max(r.num_decodes for r in engine.iteration_records)
        assert peak_decodes >= 20

    def test_qoserve_tbt_clean_under_decode_pressure(self, em, trace):
        scaled = trace.scaled_arrivals(1.5)
        summary, _ = run_replica_trace(
            em, make_scheduler("qoserve-oracle", em), scaled
        )
        assert summary.violations.tbt_miss_pct < 1.5

    def test_qoserve_beats_fcfs_here_too(self, em, trace):
        scaled = trace.scaled_arrivals(2.5)
        fcfs, _ = run_replica_trace(
            em, make_scheduler("fcfs", em), scaled.fresh_copy()
        )
        qoserve, _ = run_replica_trace(
            em, make_scheduler("qoserve-oracle", em), scaled.fresh_copy()
        )
        assert (
            qoserve.violations.overall_pct
            <= fcfs.violations.overall_pct
        )

    def test_decode_slots_bound_concurrency(self, em, trace):
        from repro.engine import ReplicaConfig, ReplicaEngine
        from repro.simcore import Simulator

        sim = Simulator()
        engine = ReplicaEngine(
            sim, em, make_scheduler("edf", em),
            ReplicaConfig(max_decode_slots=24, record_iterations=True),
        )
        for r in trace.scaled_arrivals(2.0):
            engine.submit(r)
        sim.run(max_events=30_000_000)
        assert all(r.is_finished for r in engine.submitted)
        assert max(
            rec.num_decodes for rec in engine.iteration_records
        ) <= 24
