"""Unit tests for batch latency predictors (Section 3.6.1)."""

import pytest

from repro.core.predictor import (
    ForestBatchPredictor,
    OracleBatchPredictor,
    cached_forest_predictor,
)
from repro.forest import RandomForestRegressor
from repro.perfmodel.execution import BatchShape, PrefillChunk


class TestOracle:
    def test_matches_execution_model(self, execution_model):
        predictor = OracleBatchPredictor(execution_model)
        shape = BatchShape([PrefillChunk(256, 512)], 8, 8 * 1024)
        assert predictor.predict(shape) == execution_model.batch_time(shape)


class TestForestPredictor:
    def test_validation_error_under_10pct(self, execution_model,
                                           forest_predictor):
        """The paper quotes <10% error for the trained predictor."""
        assert forest_predictor.validation_error(execution_model) < 0.10

    def test_predictions_positive(self, forest_predictor):
        shape = BatchShape([PrefillChunk(300, 1000)], 16, 16 * 2048)
        assert forest_predictor.predict(shape) > 0

    def test_conservative_bias(self, execution_model, forest_predictor):
        """With quantile + safety factor, predictions should mostly
        over-estimate (erring toward smaller chunks, per the paper)."""
        over = 0
        total = 0
        for chunk in (96, 320, 640, 1280, 2304):
            for decodes in (4, 24, 96):
                shape = BatchShape(
                    [PrefillChunk(chunk, 512)], decodes, decodes * 1024
                )
                truth = execution_model.batch_time(shape)
                pred = forest_predictor.predict(shape)
                total += 1
                if pred >= truth:
                    over += 1
        assert over / total >= 0.8

    def test_memo_rounding_is_conservative(self, forest_predictor):
        """Bucketed keys round feature values up, so the memoized
        prediction is for a batch at least as heavy."""
        light = BatchShape([PrefillChunk(97, 100)], 3, 3 * 900)
        heavy = BatchShape([PrefillChunk(128, 256)], 8, 3 * 16384)
        assert forest_predictor.predict(light) <= forest_predictor.predict(
            heavy
        ) * forest_predictor.safety_factor + 1e-9

    def test_memoization_hits(self, execution_model):
        predictor = ForestBatchPredictor.train(
            execution_model, n_trees=4, max_depth=6
        )
        shape = BatchShape([PrefillChunk(100, 100)], 2, 2 * 800)
        first = predictor.predict(shape)
        second = predictor.predict(shape)
        assert first == second
        assert len(predictor._memo) >= 1

    def test_unfitted_forest_rejected(self):
        with pytest.raises(ValueError):
            ForestBatchPredictor(RandomForestRegressor())

    def test_bad_quantile_rejected(self, forest_predictor):
        with pytest.raises(ValueError):
            ForestBatchPredictor(forest_predictor.forest, quantile=1.5)

    def test_bad_safety_factor_rejected(self, forest_predictor):
        with pytest.raises(ValueError):
            ForestBatchPredictor(
                forest_predictor.forest, safety_factor=0.0
            )


class TestMemoEdgeCases:
    def test_bucket_round_up(self, execution_model):
        """Memo keys round every feature *up* to its bucket edge, so
        shapes within one bucket share the heavier key's prediction."""
        predictor = ForestBatchPredictor.train(
            execution_model, n_trees=4, max_depth=6
        )
        buckets = predictor.MEMO_BUCKETS
        a = BatchShape([PrefillChunk(65, 100)], 3, 3 * 800)
        b = BatchShape([PrefillChunk(96, 100)], 3, 3 * 800)  # same bucket
        predictor.predict(a)
        predictor.predict(b)
        (key,) = predictor._memo.keys()
        # Every key component sits on a bucket edge at or above the
        # raw feature value.
        from repro.perfmodel.profiler import batch_features

        for value, rounded, bucket in zip(
            batch_features(b), key, buckets
        ):
            assert rounded % bucket == 0
            assert rounded >= value
            assert rounded - value < bucket
        assert predictor.predict(a) == predictor.predict(b)

    def test_exact_bucket_edge_not_inflated(self, execution_model):
        """A feature already on a bucket edge maps to itself."""
        predictor = ForestBatchPredictor.train(
            execution_model, n_trees=4, max_depth=6
        )
        chunk_bucket = predictor.MEMO_BUCKETS[0]
        shape = BatchShape([PrefillChunk(chunk_bucket * 4, 0)], 0, 0)
        predictor.predict(shape)
        (key,) = predictor._memo.keys()
        assert key[0] == chunk_bucket * 4

    def test_memo_limit_clear_and_repopulate(self, execution_model,
                                             monkeypatch):
        """Hitting MEMO_LIMIT clears the dict and repopulates; results
        stay identical to the unmemoized path throughout."""
        predictor = ForestBatchPredictor.train(
            execution_model, n_trees=4, max_depth=6
        )
        monkeypatch.setattr(ForestBatchPredictor, "MEMO_LIMIT", 4)
        shapes = [
            BatchShape([PrefillChunk(33 + 32 * i, 0)], i, i * 20_000)
            for i in range(6)
        ]
        first_pass = [predictor.predict(s) for s in shapes]
        # 6 distinct keys through a limit of 4: the memo was cleared
        # at least once and holds only the post-clear tail.
        assert len(predictor._memo) <= 4
        second_pass = [predictor.predict(s) for s in shapes]
        assert second_pass == first_pass
        unmemo = ForestBatchPredictor(
            predictor.forest,
            quantile=predictor.quantile,
            safety_factor=predictor.safety_factor,
            memoize=False,
        )
        # The memoized value equals the direct prediction at the
        # bucketed key (the conservative surrogate), recomputed fresh.
        for shape, value in zip(shapes, first_pass):
            from repro.perfmodel.profiler import batch_features

            key = tuple(
                bucket * -(-feature // bucket)
                for feature, bucket in zip(
                    batch_features(shape), predictor.MEMO_BUCKETS
                )
            )
            direct = unmemo.safety_factor * unmemo.forest.predict_one(
                key, quantile=unmemo.quantile
            )
            assert value == direct


class TestCache:
    def test_cached_predictor_reused(self, execution_model):
        a = cached_forest_predictor(execution_model)
        b = cached_forest_predictor(execution_model)
        assert a is b

    def test_cache_keyed_by_quantile(self, execution_model):
        a = cached_forest_predictor(execution_model, quantile=0.75)
        b = cached_forest_predictor(execution_model, quantile=0.9)
        assert a is not b
