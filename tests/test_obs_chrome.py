"""Unit tests for the Chrome trace-event exporter and timeline table."""

import json

from repro.obs.chrome import (
    per_request_timeline,
    render_timeline,
    to_chrome_trace,
    write_chrome_trace,
)


def sample_events():
    return [
        {
            "kind": "iteration_scheduled", "ts": 1.0, "replica_id": 0,
            "iteration": 0, "dur": 0.05, "prefill_tokens": 256,
            "num_prefills": 1, "num_decodes": 2,
            "decode_context_tokens": 700, "prefill_request_ids": [1],
        },
        {
            "kind": "kv_cache_snapshot", "ts": 1.05, "replica_id": 0,
            "used_blocks": 40, "capacity_blocks": 100, "utilization": 0.4,
        },
        {
            "kind": "preempted", "ts": 1.1, "replica_id": 0,
            "request_id": 2, "prefill_tokens_lost": 128,
        },
        {
            "kind": "request_completed", "ts": 3.0, "replica_id": 0,
            "request_id": 1, "tier": "Q1", "arrival_time": 0.5,
            "scheduled_first_time": 1.0, "first_token_time": 1.2,
            "completion_time": 3.0, "relegated": False,
            "violated": False, "evictions": 0,
        },
        {
            "kind": "request_completed", "ts": 4.0, "replica_id": 0,
            "request_id": 2, "tier": "Q2", "arrival_time": 0.6,
            "scheduled_first_time": 1.5, "first_token_time": 2.0,
            "completion_time": 4.0, "relegated": True,
            "violated": True, "evictions": 1,
        },
        {
            "kind": "request_completed", "ts": 9.0, "replica_id": 0,
            "request_id": 3, "tier": "Q3", "arrival_time": 5.0,
            "scheduled_first_time": 5.5, "first_token_time": 6.0,
            "completion_time": 9.0, "relegated": False,
            "violated": False, "evictions": 0,
        },
    ]


class TestToChromeTrace:
    def test_iteration_span_shape(self):
        trace = to_chrome_trace(sample_events())
        spans = [e for e in trace["traceEvents"]
                 if e.get("ph") == "X" and e["cat"] == "engine"]
        assert len(spans) == 1
        span = spans[0]
        assert span["pid"] == 0
        assert span["tid"] == 0
        assert span["ts"] == 1.0 * 1e6
        assert span["dur"] == 0.05 * 1e6
        assert span["args"]["prefill_tokens"] == 256

    def test_kv_counter_and_instant_markers(self):
        trace = to_chrome_trace(sample_events())
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert counters[0]["args"]["used_blocks"] == 40
        instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
        assert instants[0]["name"] == "preempted"
        assert instants[0]["args"]["prefill_tokens_lost"] == 128

    def test_batch_slots_reused_after_free(self):
        trace = to_chrome_trace(sample_events())
        request_spans = {
            e["args"]["request_id"]: e
            for e in trace["traceEvents"]
            if e.get("cat") == "request"
        }
        # Requests 1 and 2 overlap -> distinct slots; request 3 starts
        # after both finished -> reuses the earliest-freed slot.
        assert request_spans[1]["tid"] != request_spans[2]["tid"]
        assert request_spans[3]["tid"] == request_spans[1]["tid"]

    def test_metadata_names_processes_and_tracks(self):
        trace = to_chrome_trace(sample_events())
        meta = [e for e in trace["traceEvents"] if e.get("ph") == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "replica 0") in names
        assert ("thread_name", "iterations") in names
        assert ("thread_name", "batch slot 1") in names

    def test_every_complete_event_has_required_keys(self):
        trace = to_chrome_trace(sample_events())
        for event in trace["traceEvents"]:
            if event.get("ph") == "X":
                for key in ("pid", "tid", "ts", "dur", "name"):
                    assert key in event

    def test_write_is_loadable_json(self, tmp_path):
        path = tmp_path / "chrome.json"
        write_chrome_trace(sample_events(), path)
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["displayTimeUnit"] == "ms"


class TestTimeline:
    def test_rows_sorted_by_arrival(self):
        rows = per_request_timeline(sample_events())
        assert [r["request_id"] for r in rows] == [1, 2, 3]
        first = rows[0]
        assert first["queue_s"] == 0.5
        assert first["ttft_s"] == 0.7
        assert first["ttlt_s"] == 2.5

    def test_render_has_header_and_flags(self):
        text = render_timeline(sample_events())
        lines = text.splitlines()
        assert lines[0].startswith("request_id")
        assert "yes" in text  # relegated/violated flags rendered
        assert len(lines) == 2 + 3  # header, rule, three rows

    def test_empty_trace(self):
        assert "no request_completed" in render_timeline([])
