"""Unit tests for the ConServe-style baseline."""

import pytest

from repro.engine.interface import EngineView
from repro.engine.kvcache import KVCacheManager
from repro.schedulers import ConServeScheduler
from tests.conftest import Q1, Q2, Q3, make_request


def make_view(execution_model, decode_requests=()):
    return EngineView(
        now=0.0,
        decode_requests=list(decode_requests),
        kv_cache=KVCacheManager(capacity_tokens=400_000),
        execution_model=execution_model,
        max_decode_slots=256,
        inflight_prefill_ids=frozenset(),
    )


class TestBinaryClasses:
    def test_interactive_always_first(self):
        scheduler = ConServeScheduler()
        offline_early = make_request(arrival_time=0.0, qos=Q2)
        interactive_late = make_request(arrival_time=100.0, qos=Q1)
        assert scheduler.priority(interactive_late, 100.0) < (
            scheduler.priority(offline_early, 100.0)
        )

    def test_fcfs_within_class(self):
        scheduler = ConServeScheduler()
        a = make_request(arrival_time=1.0, qos=Q2)
        b = make_request(arrival_time=2.0, qos=Q3)
        assert scheduler.priority(a, 2.0) < scheduler.priority(b, 2.0)

    def test_q2_q3_indistinguishable(self):
        """The documented blind spot: same arrival, same priority."""
        scheduler = ConServeScheduler()
        q2 = make_request(arrival_time=5.0, qos=Q2)
        q3 = make_request(arrival_time=5.0, qos=Q3)
        assert scheduler.priority(q2, 5.0) == scheduler.priority(q3, 5.0)


class TestReactiveChunking:
    def test_small_chunk_with_interactive_decode(self, execution_model):
        scheduler = ConServeScheduler()
        decode = make_request(prompt_tokens=10, decode_tokens=50, qos=Q1)
        decode.prefill_done = 10
        view = make_view(execution_model, [decode])
        assert scheduler.prefill_token_budget(view) <= 255

    def test_large_chunk_when_offline_only(self, execution_model):
        scheduler = ConServeScheduler()
        offline = make_request(request_id=1, prompt_tokens=5000, qos=Q3)
        scheduler.enqueue(offline, 0.0)
        view = make_view(execution_model)
        assert scheduler.prefill_token_budget(view) == 2048

    def test_interactive_in_queue_shrinks_chunk(self, execution_model):
        scheduler = ConServeScheduler()
        scheduler.enqueue(
            make_request(request_id=1, prompt_tokens=500, qos=Q1), 0.0
        )
        view = make_view(execution_model)
        assert scheduler.prefill_token_budget(view) == 256


class TestAdmission:
    def test_offline_withheld_when_interactive_pending(
        self, execution_model
    ):
        scheduler = ConServeScheduler()
        interactive = make_request(request_id=1, prompt_tokens=500, qos=Q1)
        offline = make_request(request_id=2, prompt_tokens=500, qos=Q3)
        scheduler.enqueue(interactive, 0.0)
        scheduler.enqueue(offline, 0.0)
        assignments = scheduler.plan_prefill(make_view(execution_model))
        assert all(a.request.is_interactive for a in assignments)

    def test_offline_runs_when_no_interactive(self, execution_model):
        scheduler = ConServeScheduler()
        offline = make_request(request_id=2, prompt_tokens=500, qos=Q3)
        scheduler.enqueue(offline, 0.0)
        assignments = scheduler.plan_prefill(make_view(execution_model))
        assert assignments and assignments[0].request is offline

    def test_validation(self):
        with pytest.raises(ValueError):
            ConServeScheduler(
                interactive_chunk_size=512, offline_chunk_size=256
            )
