"""Unit and integration tests for the replica engine."""

import pytest

from repro.engine import ReplicaConfig, ReplicaEngine
from repro.schedulers import FCFSScheduler
from repro.simcore import Simulator
from tests.conftest import Q1, Q2, make_request


def run_engine(requests, execution_model, scheduler=None, config=None,
               prefill_sink=None):
    sim = Simulator()
    engine = ReplicaEngine(
        sim,
        execution_model,
        scheduler or FCFSScheduler(chunk_size=256),
        config or ReplicaConfig(),
        prefill_sink=prefill_sink,
    )
    for r in requests:
        engine.submit(r)
    sim.run(max_events=1_000_000)
    return engine, sim


class TestSingleRequest:
    def test_completes(self, execution_model):
        r = make_request(prompt_tokens=500, decode_tokens=10)
        engine, sim = run_engine([r], execution_model)
        assert r.is_finished
        assert engine.completed == [r]
        assert r.completion_time is not None

    def test_first_token_at_prefill_completion(self, execution_model):
        """Section 2.1: the final prefill chunk produces token 1."""
        r = make_request(prompt_tokens=500, decode_tokens=10)
        run_engine([r], execution_model)
        # 500 tokens at chunk 256 -> 2 iterations; TTFT < 3 iterations.
        assert r.ttft is not None
        assert 0 < r.ttft < 0.2

    def test_token_count_exact(self, execution_model):
        r = make_request(prompt_tokens=100, decode_tokens=7)
        run_engine([r], execution_model)
        assert r.decoded == 7

    def test_single_token_request(self, execution_model):
        """decode_tokens=1: finishes at prefill completion (AzCode's
        median request generates 8 tokens; 1 is the floor)."""
        r = make_request(prompt_tokens=300, decode_tokens=1)
        engine, _ = run_engine([r], execution_model)
        assert r.is_finished
        assert r.ttft == r.ttlt

    def test_kv_released_after_completion(self, execution_model):
        r = make_request(prompt_tokens=500, decode_tokens=5)
        engine, _ = run_engine([r], execution_model)
        assert engine.kv_cache.used_blocks == 0

    def test_decode_pacing_respects_tbt(self, execution_model):
        """With a 256 chunk and one request, inter-token gaps must sit
        well inside the 50 ms TBT SLO."""
        r = make_request(prompt_tokens=2000, decode_tokens=50, qos=Q1)
        run_engine([r], execution_model)
        assert r.max_tbt < 0.050
        assert r.tbt_gap_misses == 0


class TestMultipleRequests:
    def test_all_complete(self, execution_model):
        requests = [
            make_request(request_id=i, arrival_time=i * 0.1,
                         prompt_tokens=400 + 37 * i, decode_tokens=5 + i)
            for i in range(20)
        ]
        engine, _ = run_engine(requests, execution_model)
        assert len(engine.completed) == 20
        assert all(r.is_finished for r in requests)

    def test_decode_batching_shares_iterations(self, execution_model):
        """Two concurrent decodes progress together, so the engine
        takes far fewer iterations than serial execution would."""
        requests = [
            make_request(request_id=i, prompt_tokens=100, decode_tokens=50)
            for i in range(4)
        ]
        engine, _ = run_engine(requests, execution_model)
        assert engine.iterations_run < 4 * 50

    def test_arrival_wakes_idle_engine(self, execution_model):
        early = make_request(request_id=0, arrival_time=0.0,
                             prompt_tokens=100, decode_tokens=2)
        late = make_request(request_id=1, arrival_time=100.0,
                            prompt_tokens=100, decode_tokens=2)
        engine, sim = run_engine([early, late], execution_model)
        assert late.is_finished
        assert late.scheduled_first_time >= 100.0

    def test_busy_time_accounted(self, execution_model):
        requests = [make_request(request_id=i, prompt_tokens=300,
                                 decode_tokens=3) for i in range(5)]
        engine, sim = run_engine(requests, execution_model)
        assert 0 < engine.busy_time <= sim.now

    def test_iteration_records(self, execution_model):
        r = make_request(prompt_tokens=600, decode_tokens=5)
        engine, _ = run_engine(
            [r], execution_model, config=ReplicaConfig(record_iterations=True)
        )
        assert len(engine.iteration_records) == engine.iterations_run
        assert engine.iteration_records[0].prefill_tokens > 0


class TestChunkedPrefill:
    def test_long_prompt_spans_iterations(self, execution_model):
        r = make_request(prompt_tokens=1000, decode_tokens=1)
        engine, _ = run_engine([r], execution_model)
        # 1000 tokens / 256 chunk -> at least 4 iterations.
        assert engine.iterations_run >= 4

    def test_chunk_budget_includes_decodes(self, execution_model):
        """Sarathi semantics: decode tokens count against the chunk, so
        a full decode queue shrinks the prefill share of the batch."""
        decodes = [
            make_request(request_id=i, prompt_tokens=50, decode_tokens=200)
            for i in range(40)
        ]
        prefill = make_request(request_id=99, arrival_time=2.0,
                               prompt_tokens=512, decode_tokens=1)
        engine, _ = run_engine(
            decodes + [prefill], execution_model,
            config=ReplicaConfig(record_iterations=True),
        )
        loaded = [
            rec for rec in engine.iteration_records
            if rec.num_decodes >= 30 and rec.prefill_tokens > 0
        ]
        assert loaded, "expected mixed batches"
        for rec in loaded:
            assert rec.prefill_tokens + rec.num_decodes <= 256


class TestDecodeSlots:
    def test_running_requests_capped(self, execution_model):
        requests = [
            make_request(request_id=i, prompt_tokens=64, decode_tokens=400)
            for i in range(30)
        ]
        config = ReplicaConfig(max_decode_slots=8)
        sim = Simulator()
        engine = ReplicaEngine(sim, execution_model,
                               FCFSScheduler(chunk_size=256), config)
        peak = 0
        for r in requests:
            engine.submit(r)
        while sim.pending_events:
            sim.run(max_events=1)
            peak = max(peak, engine.running_requests)
        assert peak <= 8
        assert all(r.is_finished for r in requests)


class TestPrefillOnlyMode:
    def test_handoff_to_sink(self, execution_model):
        handed = []
        r = make_request(prompt_tokens=700, decode_tokens=20)
        config = ReplicaConfig(prefill_only=True)
        engine, sim = run_engine(
            [r], execution_model, config=config,
            prefill_sink=lambda req, t: handed.append((req, t)),
        )
        assert len(handed) == 1
        assert handed[0][0] is r
        assert r.prefill_done == r.prompt_tokens
        # KV shipped to the decode node: local holding released.
        assert engine.kv_cache.used_blocks == 0
        # The prefill node does not emit tokens.
        assert r.decoded == 0

    def test_prefill_only_requires_sink(self, execution_model):
        with pytest.raises(ValueError):
            ReplicaEngine(
                Simulator(), execution_model, FCFSScheduler(),
                ReplicaConfig(prefill_only=True),
            )


class TestKVEviction:
    def test_eviction_recovers_and_completes(self):
        """Force KV exhaustion with a tiny cache and check recompute."""
        from repro.perfmodel import A100_80GB, LLAMA3_8B, ExecutionModel

        execution_model = ExecutionModel(LLAMA3_8B, A100_80GB)
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model,
            FCFSScheduler(chunk_size=256, kv_start_watermark=1.0),
            ReplicaConfig(max_decode_slots=64),
        )
        # Shrink the cache drastically after construction.
        from repro.engine.kvcache import KVCacheManager

        engine.kv_cache = KVCacheManager(capacity_tokens=2048, block_size=16)
        requests = [
            make_request(request_id=i, prompt_tokens=400,
                         decode_tokens=300, qos=Q2)
            for i in range(6)
        ]
        for r in requests:
            engine.submit(r)
        sim.run(max_events=2_000_000)
        assert all(r.is_finished for r in requests)
        assert sum(r.evictions for r in requests) > 0
        assert all(r.decoded == r.decode_tokens for r in requests)

    def test_all_past_deadline_victim_is_latest_deadline(
        self, execution_model
    ):
        """Regression: when NO decode has positive slack (every
        next-token deadline already passed), the victim choice must
        still be deterministic — the request with the *latest*
        deadline loses, since it is least behind schedule."""
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model, FCFSScheduler(chunk_size=256),
            ReplicaConfig(),
        )
        requests = []
        for i in range(4):
            r = make_request(request_id=i, arrival_time=float(i),
                             prompt_tokens=100, decode_tokens=50, qos=Q1)
            r.prefill_done = r.prompt_tokens  # mid-decode
            r.decoded = 1
            requests.append(r)
        engine.decode_queue.extend(requests)
        sim.schedule(1000.0, lambda: None)
        sim.run()
        assert all(r.next_token_deadline < sim.now for r in requests)
        # Latest arrival -> latest (least-negative) deadline loses.
        assert engine._pick_eviction_victim(
            exclude=requests[0]
        ) is requests[3]
        # Excluding the chosen victim falls back to the next-latest.
        assert engine._pick_eviction_victim(
            exclude=requests[3]
        ) is requests[2]


class TestIncrementalDecodeAccounting:
    """The engine's _decode_context_total mirrors the decode queue.

    The counter replaces a per-iteration sum over the queue; every
    mutation path (prefill completion, decode token, completion,
    eviction, cancellation, crash, handoff) must keep it exact.
    """

    @staticmethod
    def _instrument(engine):
        observed = []
        original = engine._start_iteration

        def checked():
            observed.append(
                engine._decode_context_total
                == sum(r.context_length for r in engine.decode_queue)
            )
            return original()

        engine._start_iteration = checked
        return observed

    def test_invariant_through_normal_run(self, execution_model):
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model, FCFSScheduler(chunk_size=256),
            ReplicaConfig(),
        )
        observed = self._instrument(engine)
        for i in range(8):
            engine.submit(
                make_request(request_id=i, arrival_time=0.1 * i,
                             prompt_tokens=300 + 40 * i,
                             decode_tokens=20 + i, qos=Q1)
            )
        sim.run(max_events=1_000_000)
        assert observed and all(observed)
        assert engine._decode_context_total == 0  # queue drained

    def test_invariant_through_eviction(self):
        from repro.engine.kvcache import KVCacheManager
        from repro.perfmodel import A100_80GB, LLAMA3_8B, ExecutionModel

        execution_model = ExecutionModel(LLAMA3_8B, A100_80GB)
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model,
            FCFSScheduler(chunk_size=256, kv_start_watermark=1.0),
            ReplicaConfig(max_decode_slots=64),
        )
        engine.kv_cache = KVCacheManager(capacity_tokens=2048,
                                         block_size=16)
        observed = self._instrument(engine)
        requests = [
            make_request(request_id=i, prompt_tokens=400,
                         decode_tokens=300, qos=Q2)
            for i in range(6)
        ]
        for r in requests:
            engine.submit(r)
        sim.run(max_events=2_000_000)
        assert sum(r.evictions for r in requests) > 0  # path exercised
        assert observed and all(observed)
        assert engine._decode_context_total == 0

    def test_invariant_after_cancel_and_crash(self, execution_model):
        sim = Simulator()
        engine = ReplicaEngine(
            sim, execution_model, FCFSScheduler(chunk_size=256),
            ReplicaConfig(),
        )
        requests = [
            make_request(request_id=i, prompt_tokens=200,
                         decode_tokens=500, qos=Q2)
            for i in range(4)
        ]
        for r in requests:
            engine.submit(r)
        sim.run(max_events=3_000)  # stop mid-flight
        in_decode = [r for r in engine.decode_queue]
        if in_decode:
            engine.cancel_request(in_decode[0], reason="test")
            assert engine._decode_context_total == sum(
                r.context_length for r in engine.decode_queue
            )
        engine.crash()
        assert engine._decode_context_total == 0
