"""The code snippets in docs/EXTENDING.md must keep working."""

from repro.core.qos import QoSClass, QoSSpec
from repro.core.request import Request
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import run_replica_trace
from repro.perfmodel import ExecutionModel, HardwareSpec, ModelSpec
from repro.schedulers.base import FixedChunkScheduler
from repro.workload import (
    DiurnalArrivals,
    TierAssigner,
    TierMix,
    TraceBuilder,
)
from repro.workload.datasets import DatasetSpec
from repro.workload.distributions import LognormalLengths


class DeadlineDensityScheduler(FixedChunkScheduler):
    """The custom-scheduler example from docs/EXTENDING.md."""

    name = "deadline-density"

    def priority(self, request: Request, now: float) -> float:
        slack = request.first_token_deadline - now
        return slack / max(1, request.remaining_prefill)


def make_docs_workload(n=60):
    my_dataset = DatasetSpec(
        name="my-app",
        prompt_lengths=LognormalLengths(p50=1200, p90=4000,
                                        max_tokens=8192),
        decode_lengths=LognormalLengths(p50=100, p90=400),
    )
    return TraceBuilder(
        my_dataset,
        arrivals=DiurnalArrivals(1.0, 4.0, phase_duration=600),
        tier_assigner=TierAssigner(
            TierMix.interactive_heavy(), low_priority_fraction=0.2
        ),
    ).build(n)


class TestExtendingDocs:
    def test_custom_scheduler_runs(self):
        trace = make_docs_workload()
        summary, _ = run_replica_trace(
            get_execution_model(), DeadlineDensityScheduler(), trace
        )
        assert summary.finished == len(trace)

    def test_custom_deployment_constructs(self):
        my_model = ModelSpec(
            name="MyModel-13B", num_layers=40, hidden_size=5120,
            intermediate_size=13824, num_q_heads=40, num_kv_heads=40,
            vocab_size=32000,
        )
        my_gpu = HardwareSpec(
            name="L40S", peak_flops=362e12, mem_bandwidth=0.864e12,
            mem_capacity=48e9,
        )
        em = ExecutionModel(my_model, my_gpu, tp_degree=2)
        assert em.kv_capacity_tokens > 0
        assert em.peak_prefill_throughput(2048) > 0

    def test_custom_qos_spec(self):
        ultra = QoSSpec(
            "ultra", QoSClass.INTERACTIVE, ttft_slo=1.0, tbt_slo=0.020
        )
        assert ultra.token_deadline(0.0, 2) == 1.02
