"""End-to-end integration tests: full simulations, cross-scheduler
behavioural comparisons, and engine-level invariants over real runs.

These are the tests that tie the reproduction's claims together at a
small scale: QoServe beating deadline-blind baselines, relegation
kicking in under overload, dynamic chunking raising throughput.
"""

import pytest

from repro.engine import ReplicaConfig, ReplicaEngine
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.schedulers import QoServeConfig, QoServeScheduler
from repro.simcore import Simulator
from repro.workload.datasets import AZURE_CODE, AZURE_CONV, SHAREGPT
from repro.workload.tiers import TierAssigner
from repro.workload.trace import TraceBuilder
from repro.workload.arrivals import PoissonArrivals


@pytest.fixture(scope="module")
def em():
    return get_execution_model("llama3-8b")


def run(em, kind, trace, **kwargs):
    scheduler = make_scheduler(kind, em, **kwargs)
    summary, engine = run_replica_trace(em, scheduler, trace.fresh_copy())
    return summary, engine


class TestConservation:
    """Token and request conservation over full runs."""

    @pytest.mark.parametrize("dataset", [AZURE_CODE, AZURE_CONV, SHAREGPT])
    def test_all_tokens_produced(self, em, dataset):
        trace = build_trace(dataset, qps=2.0, num_requests=60, seed=11)
        summary, engine = run(em, "qoserve-oracle", trace)
        for r in engine.submitted:
            assert r.is_finished
            assert r.decoded == r.decode_tokens
            assert r.prefill_done == r.prefill_target

    def test_kv_empty_after_drain(self, em):
        trace = build_trace(AZURE_CODE, qps=2.0, num_requests=60, seed=11)
        _, engine = run(em, "qoserve-oracle", trace)
        assert engine.kv_cache.used_blocks == 0

    def test_timestamps_causal(self, em):
        trace = build_trace(AZURE_CONV, qps=2.0, num_requests=60, seed=11)
        _, engine = run(em, "edf", trace)
        for r in engine.submitted:
            assert r.scheduled_first_time >= r.arrival_time
            assert r.first_token_time >= r.scheduled_first_time
            assert r.completion_time >= r.first_token_time

    def test_determinism_across_runs(self, em):
        trace = build_trace(AZURE_CODE, qps=2.5, num_requests=80, seed=3)
        a, _ = run(em, "qoserve-oracle", trace)
        b, _ = run(em, "qoserve-oracle", trace)
        assert a.overall_percentiles == b.overall_percentiles
        assert a.violations.overall_pct == b.violations.overall_pct


class TestSchedulerComparisons:
    """The paper's qualitative orderings at moderate scale."""

    @pytest.fixture(scope="class")
    def overload_trace(self):
        return build_trace(AZURE_CODE, qps=1.0, num_requests=900, seed=21)

    def test_qoserve_beats_fcfs_under_load(self, em, overload_trace):
        trace = overload_trace.scaled_arrivals(4.0)
        fcfs, _ = run(em, "fcfs", trace)
        qoserve, _ = run(em, "qoserve-oracle", trace)
        assert (
            qoserve.violations.overall_pct < fcfs.violations.overall_pct
        )

    def test_qoserve_beats_edf_under_overload(self, em, overload_trace):
        trace = overload_trace.scaled_arrivals(5.0)
        edf, _ = run(em, "edf", trace)
        qoserve, _ = run(em, "qoserve-oracle", trace)
        assert (
            qoserve.violations.overall_pct < edf.violations.overall_pct
        )

    def test_srpf_unfair_to_long_requests(self, em, overload_trace):
        trace = overload_trace.scaled_arrivals(4.0)
        srpf, _ = run(em, "srpf", trace)
        assert srpf.violations.long_pct > srpf.violations.short_pct

    def test_fcfs_violates_strict_tier_first(self, em, overload_trace):
        trace = overload_trace.scaled_arrivals(4.0)
        fcfs, _ = run(em, "fcfs", trace)
        assert fcfs.violations.tier("Q1") > fcfs.violations.tier("Q3")

    def test_qoserve_fair_to_long_requests_at_normal_load(
        self, em, overload_trace
    ):
        trace = overload_trace.scaled_arrivals(2.0)
        qoserve, _ = run(em, "qoserve-oracle", trace)
        assert qoserve.violations.long_pct <= 5.0

    def test_dynamic_chunking_finishes_faster(self, em, overload_trace):
        """Dynamic chunking's throughput gain shows up as a shorter
        makespan on a fixed trace (Table 5's DC row)."""
        trace = overload_trace.scaled_arrivals(3.5)
        _, fixed_engine = run(
            em, "qoserve-oracle", trace,
            qoserve_config=QoServeConfig(
                dynamic_chunking=False, use_forest_predictor=False
            ),
        )
        _, dynamic_engine = run(
            em, "qoserve-oracle", trace,
            qoserve_config=QoServeConfig(use_forest_predictor=False),
        )
        assert (
            dynamic_engine.simulator.now < fixed_engine.simulator.now * 0.9
        )


class TestRelegationBehaviour:
    def test_relegation_under_overload(self, em):
        trace = build_trace(AZURE_CODE, qps=6.0, num_requests=900, seed=5)
        summary, engine = run(em, "qoserve-oracle", trace)
        assert summary.violations.relegated_pct > 0
        # Relegated requests are never dropped: everything completes.
        assert summary.finished == summary.num_requests

    def test_low_priority_relegated_first(self, em):
        trace = TraceBuilder(
            AZURE_CODE,
            arrivals=PoissonArrivals(6.0),
            tier_assigner=TierAssigner(low_priority_fraction=0.3),
            seed=6,
        ).build(900)
        summary, engine = run(em, "qoserve-oracle", trace)
        relegated = [r for r in engine.submitted if r.relegated]
        assert relegated
        low_priority_share = sum(
            1 for r in relegated if not r.important
        ) / len(relegated)
        assert low_priority_share > 0.5

    def test_no_relegation_at_low_load(self, em):
        trace = build_trace(AZURE_CODE, qps=1.0, num_requests=200, seed=7)
        summary, _ = run(em, "qoserve-oracle", trace)
        assert summary.violations.relegated_pct == 0.0


class TestTbtIntegrity:
    def test_tbt_misses_rare_for_on_time_requests(self, em):
        """The paper reports <0.1% TBT violations; with the oracle
        predictor the reproduction should be near zero too."""
        trace = build_trace(AZURE_CONV, qps=2.0, num_requests=300, seed=9)
        summary, _ = run(em, "qoserve-oracle", trace)
        assert summary.violations.tbt_miss_pct < 1.0

    def test_fixed_chunk_tbt_clean(self, em):
        trace = build_trace(AZURE_CONV, qps=2.0, num_requests=300, seed=9)
        summary, _ = run(em, "edf", trace)
        assert summary.violations.tbt_miss_pct < 0.5
