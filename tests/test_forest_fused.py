"""Equivalence tests for the fused forest evaluator.

The fast paths (fused scalar walk, level-synchronous batch walk, and
the hand-rolled quantile aggregation) must be *bit-identical* to the
reference per-tree evaluation — not merely close: the dynamic chunker's
binary search compares predictions against latency budgets, so a 1-ulp
drift could flip a chunk-size decision and change experiment outputs.
"""

import math

import numpy as np
import pytest

from repro.forest import FusedForest, RandomForestRegressor
from repro.forest.tree import _NO_CHILD


def make_data(n=400, n_features=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 8, size=(n, n_features))
    y = (
        x[:, 0] ** 2
        + 3.0 * x[:, 1]
        - 2.0 * x[:, 2] * x[:, 3]
        + rng.normal(0, 0.1, n)
    )
    return x, y


@pytest.fixture(scope="module")
def fitted():
    x, y = make_data()
    forest = RandomForestRegressor(n_trees=16, max_depth=10, seed=3)
    return forest.fit(x, y), x


QUANTILES = (None, 0.0, 0.25, 0.5, 0.75, 0.9, 1.0)


class TestBitIdentical:
    def test_leaf_votes_match_per_tree(self, fitted):
        """The fused walk visits the same leaves as every tree."""
        forest, x = fitted
        for row in x[:50]:
            reference = [t.predict_one(row) for t in forest._trees]
            assert forest.fused.leaf_votes_one(row) == reference

    @pytest.mark.parametrize("quantile", QUANTILES)
    def test_scalar_fused_equals_per_tree(self, fitted, quantile):
        forest, x = fitted
        for row in x[:50]:
            fused = forest.predict_one(row, quantile=quantile)
            reference = forest.predict_one_pertree(row, quantile=quantile)
            assert fused == reference  # exact, not approx

    @pytest.mark.parametrize("quantile", QUANTILES)
    def test_batch_equals_scalar(self, fitted, quantile):
        forest, x = fitted
        batch = forest.predict_batch(x[:80], quantile=quantile)
        scalar = [
            forest.predict_one(row, quantile=quantile) for row in x[:80]
        ]
        assert batch.tolist() == scalar  # exact, not approx

    def test_aggregate_matches_np_quantile(self):
        """The hand-rolled lerp reproduces np.quantile bit-for-bit."""
        rng = np.random.default_rng(11)
        for size in (1, 2, 3, 7, 16, 33):
            votes = rng.normal(3.0, 2.0, size).tolist()
            for quantile in np.linspace(0.0, 1.0, 53):
                ours = RandomForestRegressor._aggregate(
                    votes, float(quantile)
                )
                ref = float(np.quantile(votes, float(quantile)))
                assert ours == ref, (size, float(quantile))

    def test_aggregate_mean(self):
        votes = [1.0, 2.0, 4.0, 9.0]
        assert RandomForestRegressor._aggregate(votes, None) == 4.0


class TestStructure:
    def test_roots_and_rebased_children(self, fitted):
        """Child pointers land inside their own tree's node range."""
        forest, _ = fitted
        fused = forest.fused
        bounds = list(fused.roots.tolist()) + [len(fused.feature)]
        for i in range(fused.n_trees):
            lo, hi = bounds[i], bounds[i + 1]
            for node in range(lo, hi):
                if fused.feature[node] == _NO_CHILD:
                    continue
                assert lo <= fused.left[node] < hi
                assert lo <= fused.right[node] < hi

    def test_max_depth_bounds_traversal(self, fitted):
        forest, _ = fitted
        assert 0 < forest.fused.max_depth <= forest.max_depth

    def test_single_node_trees(self):
        """Depth-0 forests (pure-leaf trees) still evaluate."""
        x = np.full((10, 2), 1.5)
        y = np.full(10, 7.0)
        forest = RandomForestRegressor(n_trees=3, seed=0).fit(x, y)
        assert forest.fused.max_depth == 0
        assert forest.predict_one([0.0, 0.0]) == 7.0
        assert forest.predict_batch(x[:4]).tolist() == [7.0] * 4

    def test_1d_input_to_batch(self, fitted):
        forest, x = fitted
        votes = forest.fused.leaf_votes(x[0])
        assert votes.shape == (1, forest.n_trees)

    def test_fused_rebuilt_after_refit(self):
        x, y = make_data(100)
        forest = RandomForestRegressor(n_trees=4, seed=1).fit(x, y)
        first = forest.fused
        forest.fit(x, -y)
        assert forest.fused is not first
        assert forest.predict_one(x[0]) == forest.predict_one_pertree(x[0])

    def test_requires_fitted_trees(self):
        with pytest.raises(ValueError):
            FusedForest([])
        forest = RandomForestRegressor()
        with pytest.raises(RuntimeError):
            forest.fused
        with pytest.raises(RuntimeError):
            forest.predict_batch(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            forest.predict_one_pertree([0.0])

    def test_aggregate_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            RandomForestRegressor._aggregate([1.0], 1.5)
        with pytest.raises(ValueError):
            RandomForestRegressor._aggregate([1.0], -0.1)
        assert not math.isnan(RandomForestRegressor._aggregate([1.0], 1.0))
