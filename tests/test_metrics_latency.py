"""Unit tests for latency extraction."""

import math

import numpy as np
import pytest

from repro.metrics.latency import (
    governing_latency,
    latency_percentiles,
    rolling_percentile,
)
from tests.conftest import Q1, Q2, make_request


def finished_interactive(arrival, ttft, rid=0):
    r = make_request(request_id=rid, arrival_time=arrival,
                     prompt_tokens=10, decode_tokens=1, qos=Q1)
    r.prefill_done = 10
    r.record_output_token(arrival + ttft)
    return r


def finished_batch(arrival, ttlt, rid=0):
    r = make_request(request_id=rid, arrival_time=arrival,
                     prompt_tokens=10, decode_tokens=2, qos=Q2)
    r.prefill_done = 10
    r.record_output_token(arrival + ttlt / 2)
    r.record_output_token(arrival + ttlt)
    return r


class TestGoverningLatency:
    def test_interactive_uses_ttft(self):
        r = finished_interactive(10.0, 2.5)
        assert governing_latency(r) == pytest.approx(2.5)

    def test_non_interactive_uses_ttlt(self):
        r = finished_batch(10.0, 120.0)
        assert governing_latency(r) == pytest.approx(120.0)

    def test_unfinished_without_now_is_inf(self):
        assert governing_latency(make_request()) == math.inf

    def test_unfinished_with_now_is_elapsed(self):
        r = make_request(arrival_time=10.0)
        assert governing_latency(r, now=14.0) == pytest.approx(4.0)

    def test_interactive_in_decode_has_ttft(self):
        r = make_request(prompt_tokens=10, decode_tokens=5, qos=Q1)
        r.prefill_done = 10
        r.record_output_token(3.0)
        assert governing_latency(r) == pytest.approx(3.0)


class TestPercentiles:
    def test_known_values(self):
        requests = [
            finished_interactive(0.0, ttft, rid=i)
            for i, ttft in enumerate([1.0, 2.0, 3.0, 4.0, 5.0])
        ]
        pcts = latency_percentiles(requests, (0.5, 1.0))
        assert pcts[0.5] == pytest.approx(3.0)
        assert pcts[1.0] == pytest.approx(5.0)

    def test_empty_is_nan(self):
        pcts = latency_percentiles([], (0.5,))
        assert math.isnan(pcts[0.5])

    def test_unfinished_mass_gives_inf_tail(self):
        requests = [finished_interactive(0.0, 1.0, rid=i) for i in range(5)]
        requests.append(make_request(request_id=9))
        pcts = latency_percentiles(requests, (0.5, 0.99))
        assert pcts[0.5] == pytest.approx(1.0)
        assert pcts[0.99] == math.inf

    def test_now_bounds_unfinished(self):
        requests = [make_request(request_id=i, arrival_time=0.0)
                    for i in range(4)]
        pcts = latency_percentiles(requests, (0.99,), now=7.0)
        assert pcts[0.99] == pytest.approx(7.0)


class TestRollingPercentile:
    def test_windows_cover_span(self):
        requests = [
            finished_interactive(float(t), 1.0, rid=t) for t in range(100)
        ]
        centers, series = rolling_percentile(requests, 0.99, window=10.0)
        assert len(centers) == len(series) >= 9
        assert np.allclose(series[~np.isnan(series)], 1.0)

    def test_detects_burst_window(self):
        calm = [finished_interactive(float(t), 1.0, rid=t)
                for t in range(50)]
        stormy = [finished_interactive(50.0 + t, 30.0, rid=100 + t)
                  for t in range(50)]
        centers, series = rolling_percentile(calm + stormy, 0.99,
                                             window=25.0)
        assert series[0] == pytest.approx(1.0)
        assert series[-1] == pytest.approx(30.0)

    def test_empty(self):
        centers, series = rolling_percentile([], 0.99)
        assert len(centers) == 0
