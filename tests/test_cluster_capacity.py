"""Unit tests for goodput search and provisioning math."""

import pytest

from repro.cluster.capacity import (
    find_max_goodput,
    replicas_needed,
    stable_drain,
)
from repro.metrics.slo import ViolationReport
from repro.metrics.summary import RunSummary


def fake_summary(violation_pct: float, drain: float = 0.0,
                 span: float = 600.0) -> RunSummary:
    report = ViolationReport(
        total_requests=100,
        overall_pct=violation_pct,
        short_pct=violation_pct,
        long_pct=violation_pct,
        important_pct=violation_pct,
        low_priority_pct=violation_pct,
    )
    return RunSummary(
        num_requests=100, finished=100, violations=report,
        drain_time=drain, arrival_span=span,
    )


class TestFindMaxGoodput:
    def test_finds_step_capacity(self):
        def evaluate(qps):
            return fake_summary(0.0 if qps <= 3.7 else 50.0)

        result = find_max_goodput(evaluate, tolerance=0.05)
        assert result.max_qps == pytest.approx(3.7, abs=0.06)
        assert result.summary_at_max is not None

    def test_zero_when_even_low_fails(self):
        result = find_max_goodput(lambda qps: fake_summary(100.0))
        assert result.max_qps == 0.0

    def test_caps_at_qps_high(self):
        result = find_max_goodput(
            lambda qps: fake_summary(0.0), qps_high=8.0
        )
        assert result.max_qps == 8.0

    def test_respects_violation_bar(self):
        def evaluate(qps):
            return fake_summary(0.5 if qps <= 2.0 else 2.0)

        strict = find_max_goodput(evaluate, violation_bar_pct=0.1)
        loose = find_max_goodput(evaluate, violation_bar_pct=3.0,
                                 qps_high=4.0)
        assert strict.max_qps == 0.0
        assert loose.max_qps == 4.0

    def test_evaluations_recorded(self):
        result = find_max_goodput(lambda qps: fake_summary(0.0),
                                  qps_high=4.0)
        assert len(result.evaluations) >= 2
        assert all(pct == 0.0 for _, pct in result.evaluations)

    def test_extra_criterion_rejects(self):
        def evaluate(qps):
            # Zero violations but divergent drain above 3 QPS.
            drain = 10.0 if qps <= 3.0 else 500.0
            return fake_summary(0.0, drain=drain, span=600.0)

        result = find_max_goodput(evaluate, tolerance=0.1)
        assert result.max_qps == pytest.approx(3.0, abs=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_max_goodput(lambda q: fake_summary(0.0),
                             qps_low=2.0, qps_high=1.0)


class TestStableDrain:
    def test_short_drain_is_stable(self):
        assert stable_drain(fake_summary(0.0, drain=10.0, span=600.0))

    def test_long_drain_unstable(self):
        assert not stable_drain(fake_summary(0.0, drain=400.0, span=600.0))

    def test_fraction_scales_with_span(self):
        assert stable_drain(fake_summary(0.0, drain=500.0, span=4000.0))

    def test_floor_for_tiny_spans(self):
        assert stable_drain(fake_summary(0.0, drain=20.0, span=10.0))

    def test_unknown_span_passes(self):
        assert stable_drain(fake_summary(0.0, drain=9999.0, span=0.0))


class TestReplicasNeeded:
    def test_exact_division(self):
        assert replicas_needed(12.0, 4.0) == 3

    def test_rounds_up(self):
        assert replicas_needed(12.1, 4.0) == 4

    def test_zero_load(self):
        assert replicas_needed(0.0, 4.0) == 0

    def test_invalid_goodput(self):
        with pytest.raises(ValueError):
            replicas_needed(10.0, 0.0)
