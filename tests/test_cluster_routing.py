"""Tests for the cluster routing strategies."""

import pytest

from repro.cluster.deployment import ROUTING_STRATEGIES, ClusterDeployment
from repro.experiments.runner import build_trace, scheduler_factory
from repro.metrics.summary import summarize_run
from repro.workload.datasets import AZURE_CODE
from tests.conftest import make_request


def run_cluster(execution_model, routing, trace, replicas=3):
    cluster = ClusterDeployment(
        execution_model,
        scheduler_factory("fcfs", execution_model),
        num_replicas=replicas,
        routing=routing,
    )
    cluster.submit_trace(trace)
    cluster.run(max_events=20_000_000)
    return cluster


class TestStrategies:
    @pytest.mark.parametrize("routing", ROUTING_STRATEGIES)
    def test_all_strategies_complete(self, execution_model, routing):
        trace = build_trace(AZURE_CODE, qps=4.0, num_requests=90, seed=2)
        cluster = run_cluster(execution_model, routing, trace)
        requests = cluster.all_requests()
        assert len(requests) == 90
        assert all(r.is_finished for r in requests)

    def test_unknown_strategy_rejected(self, execution_model):
        with pytest.raises(ValueError):
            ClusterDeployment(
                execution_model,
                scheduler_factory("fcfs", execution_model),
                num_replicas=2,
                routing="random-walk",
            )

    def test_round_robin_exactly_even(self, execution_model):
        cluster = ClusterDeployment(
            execution_model,
            scheduler_factory("fcfs", execution_model),
            num_replicas=3,
            routing="round-robin",
        )
        for i in range(9):
            cluster.submit(make_request(request_id=i))
        counts = [len(r.submitted) for r in cluster.replicas]
        assert counts == [3, 3, 3]

    def test_least_loaded_avoids_busy_replica(self, execution_model):
        """A huge request on one replica diverts later arrivals."""
        cluster = ClusterDeployment(
            execution_model,
            scheduler_factory("fcfs", execution_model),
            num_replicas=2,
            routing="least-loaded",
        )
        elephant = make_request(request_id=0, arrival_time=0.0,
                                prompt_tokens=8000, decode_tokens=500)
        mice = [
            make_request(request_id=1 + i, arrival_time=0.5 + 0.01 * i,
                         prompt_tokens=100, decode_tokens=2)
            for i in range(8)
        ]
        cluster.submit(elephant)
        for m in mice:
            cluster.submit(m)
        cluster.run(max_events=1_000_000)
        # Whichever replica got the elephant should have received far
        # fewer of the mice.
        elephant_replica = next(
            r for r in cluster.replicas if elephant in r.submitted
        )
        assert len(elephant_replica.submitted) < 1 + len(mice)

    def test_least_loaded_tail_no_worse_than_rr(self, execution_model):
        """With heavy-tailed prompts, load-aware routing should not
        lose to round-robin on overall p99."""
        trace = build_trace(AZURE_CODE, qps=8.0, num_requests=400, seed=9)
        rr = run_cluster(
            execution_model, "round-robin", trace.fresh_copy()
        )
        ll = run_cluster(
            execution_model, "least-loaded", trace.fresh_copy()
        )
        rr_p99 = summarize_run(
            rr.all_requests(), now=rr.simulator.now
        ).overall_percentiles[0.99]
        ll_p99 = summarize_run(
            ll.all_requests(), now=ll.simulator.now
        ).overall_percentiles[0.99]
        assert ll_p99 <= rr_p99 * 1.25

    def test_power_of_two_deterministic(self, execution_model):
        def once():
            trace = build_trace(AZURE_CODE, qps=5.0, num_requests=60,
                                seed=4)
            cluster = run_cluster(
                execution_model, "power-of-two", trace
            )
            return [len(r.submitted) for r in cluster.replicas]

        assert once() == once()


class _FixedChoice:
    """Stand-in for the routing RNG returning scripted samples."""

    def __init__(self, picks):
        self.picks = list(picks)

    def choice(self, n, size, replace):
        import numpy as np

        assert size == 2 and not replace
        return np.array(self.picks[:size])


class TestTieBreaks:
    """Routing ties must resolve by replica index, not arrival order
    in the candidate list or RNG sample order."""

    def idle_cluster(self, execution_model, routing, replicas=4):
        return ClusterDeployment(
            execution_model,
            scheduler_factory("fcfs", execution_model),
            num_replicas=replicas,
            routing=routing,
        )

    def test_least_loaded_all_idle_picks_lowest_index(
        self, execution_model
    ):
        cluster = self.idle_cluster(execution_model, "least-loaded")
        for _ in range(3):
            assert cluster._pick_replica() is cluster.replicas[0]

    def test_power_of_two_tie_goes_to_lower_index(self, execution_model):
        cluster = self.idle_cluster(execution_model, "power-of-two")
        # The RNG samples replica 3 first, then replica 1; with equal
        # loads the old code kept the first sample (3) — the fix pins
        # the lower index.
        cluster._route_rng = _FixedChoice([3, 1])
        assert cluster._pick_replica() is cluster.replicas[1]

    def test_power_of_two_still_prefers_lighter_replica(
        self, execution_model
    ):
        cluster = self.idle_cluster(execution_model, "power-of-two")
        cluster._route_rng = _FixedChoice([3, 1])
        # Load replica 1 so the sampled pair is no longer tied.
        cluster.replicas[1].submit_now(
            make_request(request_id=0, prompt_tokens=4000,
                         decode_tokens=100)
        )
        assert cluster._pick_replica() is cluster.replicas[3]

    def test_power_of_two_pair_tie_lowest_index(self, execution_model):
        # With exactly two replicas the sampler is bypassed; the tie
        # must still resolve to replica 0.
        cluster = self.idle_cluster(execution_model, "power-of-two",
                                    replicas=2)
        assert cluster._pick_replica() is cluster.replicas[0]
