"""Property-based tests on core invariants: deadlines, priorities,
chunking monotonicity, and the execution model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.priority import HybridPriority
from repro.core.qos import Q1_INTERACTIVE, Q2_RELAXED
from repro.core.request import Request
from repro.perfmodel import (
    A100_80GB,
    LLAMA3_8B,
    BatchShape,
    ExecutionModel,
    PrefillChunk,
)

EM = ExecutionModel(LLAMA3_8B, A100_80GB)


@given(
    arrival=st.floats(0, 1e6, allow_nan=False),
    n=st.integers(1, 5000),
)
def test_interactive_token_deadlines_monotone(arrival, n):
    """Eq. 2 deadlines increase strictly with token index."""
    d_n = Q1_INTERACTIVE.token_deadline(arrival, n)
    d_next = Q1_INTERACTIVE.token_deadline(arrival, n + 1)
    assert d_next > d_n
    assert d_n >= Q1_INTERACTIVE.first_token_deadline(arrival)


@given(
    arrival=st.floats(0, 1e6, allow_nan=False),
    n=st.integers(1, 5000),
)
def test_non_interactive_deadline_constant(arrival, n):
    """Eq. 3: one deadline for the whole request."""
    assert Q2_RELAXED.token_deadline(arrival, n) == (
        Q2_RELAXED.first_token_deadline(arrival)
    )


@given(
    prompt=st.integers(1, 20_000),
    decode=st.integers(1, 2_000),
    alpha=st.floats(0.0, 0.1, allow_nan=False),
    progress=st.integers(0, 100),
)
def test_priority_never_decreases_with_more_work(prompt, decode, alpha,
                                                 progress):
    """For a fixed deadline, strictly more remaining work can never
    give a strictly better (lower) hybrid score."""
    hp = HybridPriority(alpha=alpha)
    small = Request(0, 0.0, prompt, decode, Q1_INTERACTIVE)
    big = Request(1, 0.0, prompt + 1 + progress, decode, Q1_INTERACTIVE)
    assert hp.score(big) >= hp.score(small)


@given(
    chunk_a=st.integers(1, 4096),
    chunk_b=st.integers(1, 4096),
    context=st.integers(0, 16_384),
    decodes=st.integers(0, 200),
)
@settings(max_examples=80)
def test_batch_time_monotone_in_prefill_tokens(chunk_a, chunk_b, context,
                                               decodes):
    lo, hi = sorted((chunk_a, chunk_b))
    t_lo = EM.batch_time(
        BatchShape([PrefillChunk(lo, context)], decodes, decodes * 1024)
    )
    t_hi = EM.batch_time(
        BatchShape([PrefillChunk(hi, context)], decodes, decodes * 1024)
    )
    assert t_hi >= t_lo - 1e-12


@given(
    tokens=st.integers(1, 8192),
    chunk=st.integers(16, 4096),
)
@settings(max_examples=60)
def test_chunked_prefill_never_faster_than_single_shot(tokens, chunk):
    """Splitting into chunks adds per-iteration overhead, so it can
    only slow the prompt down (the Figure 4 trade-off's latency side)."""
    single = EM.batch_time(BatchShape([PrefillChunk(tokens, 0)]))
    chunked = EM.prefill_time(tokens, chunk_size=chunk)
    assert chunked >= single - 1e-12


@given(
    prompt=st.integers(1, 5000),
    decode=st.integers(1, 500),
    done=st.integers(0, 5000),
)
def test_request_counters_consistent(prompt, decode, done):
    r = Request(0, 0.0, prompt, decode, Q2_RELAXED)
    r.prefill_done = min(done, prompt)
    assert r.remaining_prefill + r.prefill_done == r.prefill_target
    assert 0 <= r.remaining_prefill <= r.prefill_target
    assert r.context_length == r.prefill_done + r.decoded
