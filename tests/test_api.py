"""Unit tests for the unified public API facade (repro.api)."""

import json

import pytest

from repro.api import (
    ROUTING_STRATEGIES,
    SCHEDULER_KINDS,
    ServeConfig,
    Session,
    build_trace,
    default_tier_names,
    make_scheduler,
    simulate,
)
from repro.core.qos import Q1_INTERACTIVE
from repro.metrics.export import summary_to_dict
from repro.workload.datasets import AZURE_CONV
from tests.conftest import make_request


def _canonical(summary) -> str:
    return json.dumps(summary_to_dict(summary), sort_keys=True)


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.scheduler == "qoserve"
        assert config.num_replicas == 1
        assert config.routing == "round-robin"

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            ServeConfig(scheduler="lifo")

    def test_scheduler_case_and_prefix_tolerated(self):
        ServeConfig(scheduler="Sarathi-FCFS")

    def test_unknown_routing(self):
        with pytest.raises(ValueError, match="routing"):
            ServeConfig(routing="random")

    def test_bad_replica_count(self):
        with pytest.raises(ValueError, match="num_replicas"):
            ServeConfig(num_replicas=0)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ServeConfig(chunk_size=-1)

    def test_routing_mirror_matches_cluster(self):
        # repro.api keeps a literal copy to avoid the import cycle;
        # this pins the two tuples together.
        from repro.cluster.deployment import (
            ROUTING_STRATEGIES as CLUSTER_STRATEGIES,
        )

        assert tuple(ROUTING_STRATEGIES) == tuple(CLUSTER_STRATEGIES)


class TestBuildTrace:
    def test_by_name(self):
        by_name = build_trace("AzConv", qps=2.0, num_requests=10, seed=3)
        by_spec = build_trace(AZURE_CONV, qps=2.0, num_requests=10, seed=3)
        assert [r.prompt_tokens for r in by_name] == [
            r.prompt_tokens for r in by_spec
        ]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            build_trace("nope", qps=1.0, num_requests=1)


class TestSimulateGolden:
    def test_matches_run_replica_trace(self, execution_model):
        """The facade and the legacy helper are byte-identical."""
        from repro.experiments.runner import run_replica_trace

        def fresh_trace():
            return build_trace(
                AZURE_CONV, qps=3.0, num_requests=30, seed=11
            )

        legacy, _ = run_replica_trace(
            execution_model,
            make_scheduler("qoserve", execution_model),
            fresh_trace(),
        )
        facade = simulate(
            config=ServeConfig(scheduler="qoserve"),
            trace=fresh_trace(),
        )
        assert _canonical(facade) == _canonical(legacy)

    def test_builds_trace_when_given_dataset(self):
        summary = simulate(
            config=ServeConfig(scheduler="fcfs"),
            dataset="AzConv",
            qps=2.0,
            num_requests=8,
            seed=5,
        )
        assert summary.num_requests == 8


class TestSession:
    def test_incremental_advance(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        for i in range(4):
            session.submit(make_request(request_id=i, arrival_time=0.1 * i))
        session.advance(until=0.05)
        assert session.now <= 0.05
        session.drain()
        assert all(r.is_finished for r in session.requests)

    def test_submit_now_returns_engine(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        engine = session.submit_now(make_request())
        assert engine is session.engine

    def test_queue_depth_drops_after_drain(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        session.submit(make_request())
        assert session.queue_depth() >= 0
        session.drain()
        assert session.queue_depth() == 0

    def test_cancel(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        request = make_request(decode_tokens=500)
        session.submit(request)
        session.advance(until=0.01)
        session.cancel(request, "test_cancel")
        session.drain()
        assert request.cancelled
        assert request.cancel_reason == "test_cancel"

    def test_hooks_fire(self):
        session = Session(ServeConfig(scheduler="fcfs"))
        tokens, completions = [], []
        session.set_token_hook(lambda r, now: tokens.append(r.request_id))
        session.set_completion_hook(
            lambda r, now: completions.append(r.request_id)
        )
        request = make_request(decode_tokens=5)
        session.submit(request)
        session.drain()
        assert len(tokens) == 5
        assert completions == [request.request_id]

    def test_multi_replica_uses_cluster(self):
        session = Session(ServeConfig(scheduler="fcfs", num_replicas=2))
        assert session.deployment is not None
        assert len(session.engines) == 2
        for i in range(6):
            session.submit(make_request(request_id=i))
        session.drain()
        assert session.summary().finished == 6

    def test_summary_includes_scheduler_stats(self):
        session = Session(ServeConfig(scheduler="qoserve"))
        session.submit(make_request())
        session.drain()
        summary = session.summary()
        assert "preemptions" in summary.scheduler_stats


class TestWrapperDelegation:
    def test_runner_reexports_facade(self):
        from repro.experiments import runner

        assert runner.build_trace is build_trace
        assert runner.make_scheduler is make_scheduler
        assert runner.SCHEDULER_KINDS is SCHEDULER_KINDS

    def test_top_level_exports(self):
        import repro

        assert repro.ServeConfig is ServeConfig
        assert repro.Session is Session
        assert repro.simulate is simulate

    def test_default_tier_names(self):
        assert default_tier_names() == ("Q1", "Q2", "Q3")
