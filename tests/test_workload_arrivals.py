"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    DiurnalArrivals,
    PiecewiseArrivals,
    PoissonArrivals,
    burst_schedule,
)


class TestPoisson:
    def test_rate_matches(self, rng):
        arrivals = PoissonArrivals(qps=4.0).generate(rng, 20_000)
        duration = arrivals[-1] - arrivals[0]
        assert len(arrivals) / duration == pytest.approx(4.0, rel=0.05)

    def test_sorted_and_positive(self, rng):
        arrivals = PoissonArrivals(qps=2.0).generate(rng, 500)
        assert (np.diff(arrivals) >= 0).all()
        assert arrivals[0] > 0

    def test_exponential_gaps(self, rng):
        arrivals = PoissonArrivals(qps=1.0).generate(rng, 20_000)
        gaps = np.diff(arrivals)
        # Memoryless: std ~= mean for exponential inter-arrivals.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.05)

    def test_mean_qps(self):
        assert PoissonArrivals(qps=3.5).mean_qps() == 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(qps=0)


class TestDiurnal:
    def test_rate_at_phases(self):
        arrivals = DiurnalArrivals(2.0, 5.0, phase_duration=900.0)
        assert arrivals.rate_at(0.0) == 2.0
        assert arrivals.rate_at(899.0) == 2.0
        assert arrivals.rate_at(901.0) == 5.0
        assert arrivals.rate_at(1801.0) == 2.0

    def test_start_high(self):
        arrivals = DiurnalArrivals(2.0, 5.0, phase_duration=10.0,
                                   start_high=True)
        assert arrivals.rate_at(0.0) == 5.0
        assert arrivals.rate_at(11.0) == 2.0

    def test_phase_rates_realized(self, rng):
        arrivals = DiurnalArrivals(2.0, 5.0, phase_duration=500.0)
        times = arrivals.generate(rng, 30_000)
        low_phase = times[(times >= 0) & (times < 500)]
        high_phase = times[(times >= 500) & (times < 1000)]
        assert len(low_phase) / 500 == pytest.approx(2.0, rel=0.15)
        assert len(high_phase) / 500 == pytest.approx(5.0, rel=0.15)

    def test_mean_qps(self):
        assert DiurnalArrivals(2.0, 5.0).mean_qps() == pytest.approx(3.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(low_qps=0, high_qps=5)
        with pytest.raises(ValueError):
            DiurnalArrivals(phase_duration=0)


class TestPiecewise:
    def test_burst_schedule_rates(self):
        arrivals = burst_schedule(
            base_qps=2.0, burst_qps=10.0, burst_start=100.0,
            burst_duration=50.0,
        )
        assert arrivals.rate_at(50.0) == 2.0
        assert arrivals.rate_at(120.0) == 10.0
        assert arrivals.rate_at(200.0) == 2.0

    def test_burst_density(self, rng):
        arrivals = burst_schedule(2.0, 10.0, 100.0, 100.0)
        times = arrivals.generate(rng, 5000)
        burst = times[(times >= 100) & (times < 200)]
        assert len(burst) / 100 == pytest.approx(10.0, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseArrivals([])
        with pytest.raises(ValueError):
            PiecewiseArrivals([(10.0, 2.0), (0.0, 3.0)])
        with pytest.raises(ValueError):
            PiecewiseArrivals([(0.0, -1.0)])
