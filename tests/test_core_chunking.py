"""Unit tests for dynamic chunk sizing (Section 3.3)."""

import pytest

from repro.core.chunking import DynamicChunker
from tests.conftest import Q1, Q2, Q3, make_request


@pytest.fixture
def chunker(oracle_predictor):
    return DynamicChunker(oracle_predictor)


def decode_request(qos=Q1, arrival=0.0, decoded=1, decode_tokens=50,
                   prompt=500, rid=0):
    r = make_request(
        request_id=rid, arrival_time=arrival, prompt_tokens=prompt,
        decode_tokens=decode_tokens, qos=qos,
    )
    r.prefill_done = prompt
    r.decoded = decoded
    return r


class TestLatencyBudget:
    def test_no_decodes_is_unbounded(self, chunker):
        assert chunker.latency_budget(0.0, []) == float("inf")

    def test_interactive_slack_is_next_token_headroom(self, chunker):
        r = decode_request(decoded=1)
        # Next token (2nd) deadline: 0 + 6 + 0.05 = 6.05.
        assert chunker.latency_budget(6.0, [r]) == pytest.approx(0.05)

    def test_accumulated_slack_grows_budget(self, chunker):
        """A decode running ahead of its deadlines donates slack —
        the core dynamic-chunking insight (Figure 6)."""
        r = decode_request(decoded=1)
        early = chunker.latency_budget(1.0, [r])   # 5.05 s of slack
        late = chunker.latency_budget(6.0, [r])    # 0.05 s
        assert early > late

    def test_min_over_requests(self, chunker):
        tight = decode_request(decoded=1, rid=1)
        loose = decode_request(decoded=1, arrival=5.0, rid=2)
        assert chunker.latency_budget(6.0, [tight, loose]) == pytest.approx(
            0.05
        )

    def test_blown_deadline_clamped_to_floor(self, chunker):
        r = decode_request(decoded=10)
        # Way past all token deadlines.
        budget = chunker.latency_budget(100.0, [r])
        assert budget == pytest.approx(chunker.ni_pace_floor)

    def test_non_interactive_paced_by_ttlt(self, chunker):
        r = decode_request(qos=Q2, decoded=0, decode_tokens=100)
        r.decoded = 50
        # 600 s deadline, 550 s left, 50 tokens to go -> 11 s/token.
        assert chunker.latency_budget(50.0, [r]) == pytest.approx(11.0)

    def test_non_interactive_floor(self, chunker):
        r = decode_request(qos=Q2, decode_tokens=50)
        r.decoded = 1
        budget = chunker.latency_budget(599.9, [r])
        assert budget == pytest.approx(chunker.ni_pace_floor)


class TestPrefillBudget:
    def test_unconstrained_gives_max_chunk(self, chunker):
        decision = chunker.prefill_budget(0.0, [])
        assert decision.prefill_budget == chunker.max_chunk

    def test_tight_budget_gives_small_chunk(self, chunker):
        r = decode_request(decoded=1)
        decision = chunker.prefill_budget(6.0, [r])
        assert decision.prefill_budget < 512

    def test_loose_budget_gives_larger_chunk(self, chunker):
        r = decode_request(qos=Q3, decode_tokens=100)
        r.decoded = 1
        tight = chunker.prefill_budget(1795.0, [r]).prefill_budget
        loose = chunker.prefill_budget(0.0, [r]).prefill_budget
        assert loose > tight

    def test_chosen_chunk_respects_budget(self, chunker, oracle_predictor):
        r = decode_request(decoded=1, arrival=3.0)
        decision = chunker.prefill_budget(6.0, [r])
        if decision.prefill_budget > chunker.min_chunk:
            assert decision.predicted_latency <= decision.latency_budget

    def test_floor_granted_when_budget_too_small(self, chunker):
        r = decode_request(decoded=1)
        decision = chunker.prefill_budget(6.049, [r])
        assert decision.prefill_budget == chunker.min_chunk

    def test_extra_budget_caps(self, chunker):
        decision = chunker.prefill_budget(
            0.0, [], extra_latency_budget=0.050
        )
        assert decision.prefill_budget < chunker.max_chunk

    def test_ignore_decode_slack_requires_extra(self, chunker):
        with pytest.raises(ValueError):
            chunker.prefill_budget(0.0, [], ignore_decode_slack=True)

    def test_ignore_decode_slack_overrides_tight_decode(self, chunker):
        tight = decode_request(decoded=1)
        constrained = chunker.prefill_budget(6.0, [tight]).prefill_budget
        medha_style = chunker.prefill_budget(
            6.0, [tight], extra_latency_budget=0.2, ignore_decode_slack=True
        ).prefill_budget
        assert medha_style > constrained

    def test_monotone_in_budget(self, chunker):
        sizes = [
            chunker.prefill_budget(
                0.0, [], extra_latency_budget=b
            ).prefill_budget
            for b in (0.03, 0.06, 0.12, 0.24)
        ]
        assert sizes == sorted(sizes)


class TestValidation:
    def test_bad_chunk_bounds(self, oracle_predictor):
        with pytest.raises(ValueError):
            DynamicChunker(oracle_predictor, min_chunk=0)
        with pytest.raises(ValueError):
            DynamicChunker(oracle_predictor, min_chunk=100, max_chunk=50)


class _CountingPredictor:
    """Wraps a predictor, counting distinct predict() invocations."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def predict(self, shape):
        self.calls += 1
        return self.inner.predict(shape)


class TestSearchEfficiency:
    def test_one_eval_per_distinct_chunk(self, oracle_predictor):
        """The search never re-predicts a chunk size it has already
        evaluated (the old code evaluated predict(top) twice and the
        inf branch re-predicted)."""
        counting = _CountingPredictor(oracle_predictor)
        chunker = DynamicChunker(counting)
        r = decode_request(decoded=1)
        chunker.prefill_budget(6.0, [r])
        # Binary search over [min, max] with tolerance t probes at most
        # ceil(log2(range/t)) midpoints, plus the two bracket ends; the
        # final-answer re-check must come from the evaluation memo.
        probes = (
            (chunker.max_chunk - chunker.min_chunk)
            // chunker.search_tolerance
        ).bit_length()
        assert counting.calls <= 2 + probes

    def test_unconstrained_costs_one_prediction(self, oracle_predictor):
        counting = _CountingPredictor(oracle_predictor)
        chunker = DynamicChunker(counting)
        decision = chunker.prefill_budget(0.0, [])
        assert decision.prefill_budget == chunker.max_chunk
        assert counting.calls == 1  # inf branch must not re-predict

    def test_warm_start_skips_search(self, oracle_predictor):
        """A repeated budget resolves from the verified bracket with
        ~3 predictions instead of a full binary search."""
        counting = _CountingPredictor(oracle_predictor)
        chunker = DynamicChunker(counting)
        r = decode_request(decoded=1)
        cold = chunker.prefill_budget(6.0, [r])
        cold_calls = counting.calls
        counting.calls = 0
        warm = chunker.prefill_budget(6.0, [r])
        assert warm.prefill_budget == cold.prefill_budget
        assert counting.calls < cold_calls
        assert counting.calls <= 4  # top, floor(cached? no), lo, hi

    def test_warm_start_decisions_match_cold(self, oracle_predictor):
        """Across a drifting budget, a warm chunker and a fresh cold
        chunker must agree on every decision."""
        warm_chunker = DynamicChunker(oracle_predictor)
        r = decode_request(decoded=1)
        for step in range(20):
            now = 5.95 + 0.005 * step
            warm = warm_chunker.prefill_budget(now, [r])
            cold = DynamicChunker(oracle_predictor).prefill_budget(
                now, [r]
            )
            assert warm == cold, step

    def test_precomputed_decode_context_matches(self, oracle_predictor):
        chunker_a = DynamicChunker(oracle_predictor)
        chunker_b = DynamicChunker(oracle_predictor)
        decodes = [decode_request(rid=i, decoded=2) for i in range(8)]
        total = sum(r.context_length for r in decodes)
        a = chunker_a.prefill_budget(6.0, decodes)
        b = chunker_b.prefill_budget(6.0, decodes,
                                     decode_context_total=total)
        assert a == b
