"""Unit tests for dynamic chunk sizing (Section 3.3)."""

import pytest

from repro.core.chunking import DynamicChunker
from tests.conftest import Q1, Q2, Q3, make_request


@pytest.fixture
def chunker(oracle_predictor):
    return DynamicChunker(oracle_predictor)


def decode_request(qos=Q1, arrival=0.0, decoded=1, decode_tokens=50,
                   prompt=500, rid=0):
    r = make_request(
        request_id=rid, arrival_time=arrival, prompt_tokens=prompt,
        decode_tokens=decode_tokens, qos=qos,
    )
    r.prefill_done = prompt
    r.decoded = decoded
    return r


class TestLatencyBudget:
    def test_no_decodes_is_unbounded(self, chunker):
        assert chunker.latency_budget(0.0, []) == float("inf")

    def test_interactive_slack_is_next_token_headroom(self, chunker):
        r = decode_request(decoded=1)
        # Next token (2nd) deadline: 0 + 6 + 0.05 = 6.05.
        assert chunker.latency_budget(6.0, [r]) == pytest.approx(0.05)

    def test_accumulated_slack_grows_budget(self, chunker):
        """A decode running ahead of its deadlines donates slack —
        the core dynamic-chunking insight (Figure 6)."""
        r = decode_request(decoded=1)
        early = chunker.latency_budget(1.0, [r])   # 5.05 s of slack
        late = chunker.latency_budget(6.0, [r])    # 0.05 s
        assert early > late

    def test_min_over_requests(self, chunker):
        tight = decode_request(decoded=1, rid=1)
        loose = decode_request(decoded=1, arrival=5.0, rid=2)
        assert chunker.latency_budget(6.0, [tight, loose]) == pytest.approx(
            0.05
        )

    def test_blown_deadline_clamped_to_floor(self, chunker):
        r = decode_request(decoded=10)
        # Way past all token deadlines.
        budget = chunker.latency_budget(100.0, [r])
        assert budget == pytest.approx(chunker.ni_pace_floor)

    def test_non_interactive_paced_by_ttlt(self, chunker):
        r = decode_request(qos=Q2, decoded=0, decode_tokens=100)
        r.decoded = 50
        # 600 s deadline, 550 s left, 50 tokens to go -> 11 s/token.
        assert chunker.latency_budget(50.0, [r]) == pytest.approx(11.0)

    def test_non_interactive_floor(self, chunker):
        r = decode_request(qos=Q2, decode_tokens=50)
        r.decoded = 1
        budget = chunker.latency_budget(599.9, [r])
        assert budget == pytest.approx(chunker.ni_pace_floor)


class TestPrefillBudget:
    def test_unconstrained_gives_max_chunk(self, chunker):
        decision = chunker.prefill_budget(0.0, [])
        assert decision.prefill_budget == chunker.max_chunk

    def test_tight_budget_gives_small_chunk(self, chunker):
        r = decode_request(decoded=1)
        decision = chunker.prefill_budget(6.0, [r])
        assert decision.prefill_budget < 512

    def test_loose_budget_gives_larger_chunk(self, chunker):
        r = decode_request(qos=Q3, decode_tokens=100)
        r.decoded = 1
        tight = chunker.prefill_budget(1795.0, [r]).prefill_budget
        loose = chunker.prefill_budget(0.0, [r]).prefill_budget
        assert loose > tight

    def test_chosen_chunk_respects_budget(self, chunker, oracle_predictor):
        r = decode_request(decoded=1, arrival=3.0)
        decision = chunker.prefill_budget(6.0, [r])
        if decision.prefill_budget > chunker.min_chunk:
            assert decision.predicted_latency <= decision.latency_budget

    def test_floor_granted_when_budget_too_small(self, chunker):
        r = decode_request(decoded=1)
        decision = chunker.prefill_budget(6.049, [r])
        assert decision.prefill_budget == chunker.min_chunk

    def test_extra_budget_caps(self, chunker):
        decision = chunker.prefill_budget(
            0.0, [], extra_latency_budget=0.050
        )
        assert decision.prefill_budget < chunker.max_chunk

    def test_ignore_decode_slack_requires_extra(self, chunker):
        with pytest.raises(ValueError):
            chunker.prefill_budget(0.0, [], ignore_decode_slack=True)

    def test_ignore_decode_slack_overrides_tight_decode(self, chunker):
        tight = decode_request(decoded=1)
        constrained = chunker.prefill_budget(6.0, [tight]).prefill_budget
        medha_style = chunker.prefill_budget(
            6.0, [tight], extra_latency_budget=0.2, ignore_decode_slack=True
        ).prefill_budget
        assert medha_style > constrained

    def test_monotone_in_budget(self, chunker):
        sizes = [
            chunker.prefill_budget(
                0.0, [], extra_latency_budget=b
            ).prefill_budget
            for b in (0.03, 0.06, 0.12, 0.24)
        ]
        assert sizes == sorted(sizes)


class TestValidation:
    def test_bad_chunk_bounds(self, oracle_predictor):
        with pytest.raises(ValueError):
            DynamicChunker(oracle_predictor, min_chunk=0)
        with pytest.raises(ValueError):
            DynamicChunker(oracle_predictor, min_chunk=100, max_chunk=50)
