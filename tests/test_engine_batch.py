"""Unit tests for batch plan types."""

import pytest

from repro.engine.batch import BatchPlan, PrefillAssignment
from tests.conftest import make_request


class TestPrefillAssignment:
    def test_valid_assignment(self):
        r = make_request(prompt_tokens=100)
        a = PrefillAssignment(r, 50)
        assert a.tokens == 50

    def test_rejects_zero_tokens(self):
        with pytest.raises(ValueError):
            PrefillAssignment(make_request(), 0)

    def test_rejects_over_assignment(self):
        r = make_request(prompt_tokens=100)
        r.prefill_done = 80
        with pytest.raises(ValueError):
            PrefillAssignment(r, 30)

    def test_allows_exactly_remaining(self):
        r = make_request(prompt_tokens=100)
        r.prefill_done = 80
        assert PrefillAssignment(r, 20).tokens == 20


class TestBatchPlan:
    def test_empty(self):
        assert BatchPlan().is_empty

    def test_prefill_tokens_total(self):
        plan = BatchPlan(
            prefill_assignments=[
                PrefillAssignment(make_request(request_id=1), 100),
                PrefillAssignment(make_request(request_id=2), 56),
            ]
        )
        assert plan.prefill_tokens == 156
        assert not plan.is_empty

    def test_to_shape_projects_correctly(self):
        prefill_req = make_request(request_id=1, prompt_tokens=500)
        prefill_req.prefill_done = 200
        decode_req = make_request(request_id=2, prompt_tokens=300,
                                  decode_tokens=50)
        decode_req.prefill_done = 300
        decode_req.decoded = 10
        plan = BatchPlan(
            prefill_assignments=[PrefillAssignment(prefill_req, 128)],
            decode_requests=[decode_req],
        )
        shape = plan.to_shape()
        assert shape.prefill_tokens == 128
        assert shape.prefill_chunks[0].context_before == 200
        assert shape.num_decodes == 1
        assert shape.decode_context_total == 310

    def test_decode_only_plan(self):
        decode_req = make_request(prompt_tokens=10, decode_tokens=5)
        decode_req.prefill_done = 10
        plan = BatchPlan(decode_requests=[decode_req])
        assert not plan.is_empty
        assert plan.to_shape().num_decodes == 1
