"""Unit tests for the analytical execution-time model.

Beyond mechanics, these pin the calibration targets the reproduction
depends on: the Figure 4 shape (throughput saturating near chunk 2500
around 9-10k tokens/s; ~50 ms batches near chunk 256-330) and the
memory-bound decode floor.
"""

import pytest

from repro.perfmodel import (
    A100_80GB,
    H100_80GB,
    LLAMA3_70B,
    LLAMA3_8B,
    QWEN_7B,
    BatchShape,
    ExecutionModel,
    PrefillChunk,
)


class TestBasicProperties:
    def test_empty_batch_is_free(self, execution_model):
        assert execution_model.batch_time(BatchShape()) == 0.0

    def test_time_positive(self, execution_model):
        t = execution_model.batch_time(
            BatchShape([PrefillChunk(128, 0)], 4, 4096)
        )
        assert t > 0

    def test_monotone_in_chunk_size(self, execution_model):
        times = [
            execution_model.batch_time(BatchShape([PrefillChunk(c, 0)]))
            for c in (64, 128, 256, 512, 1024, 2048)
        ]
        assert times == sorted(times)

    def test_monotone_in_decode_context(self, execution_model):
        t_small = execution_model.decode_batch_time(32, 32 * 512)
        t_large = execution_model.decode_batch_time(32, 32 * 4096)
        assert t_large > t_small

    def test_monotone_in_batch_size(self, execution_model):
        t8 = execution_model.decode_batch_time(8, 8 * 1024)
        t64 = execution_model.decode_batch_time(64, 64 * 1024)
        assert t64 > t8

    def test_context_increases_prefill_cost(self, execution_model):
        early = execution_model.batch_time(
            BatchShape([PrefillChunk(512, 0)])
        )
        late = execution_model.batch_time(
            BatchShape([PrefillChunk(512, 8192)])
        )
        assert late > early

    def test_overhead_is_floor(self, execution_model):
        t = execution_model.batch_time(BatchShape(num_decodes=1,
                                                  decode_context_total=1))
        assert t >= execution_model.overhead


class TestCalibration:
    """Figure 4 anchors for Llama3-8B on A100."""

    def test_throughput_saturates_near_2500(self, execution_model):
        tput_2500 = execution_model.peak_prefill_throughput(2500)
        tput_4096 = execution_model.peak_prefill_throughput(4096)
        assert tput_2500 == pytest.approx(tput_4096, rel=0.05)
        assert 8000 <= tput_2500 <= 11000

    def test_small_chunk_throughput_penalty(self, execution_model):
        """Paper: chunk 2500 delivers ~2x the throughput of chunk 256."""
        ratio = (
            execution_model.peak_prefill_throughput(2500)
            / execution_model.peak_prefill_throughput(256)
        )
        assert 1.5 <= ratio <= 2.3

    def test_50ms_slo_crossing_near_chunk_330(self, execution_model):
        """Figure 4 marks chunk ~330 at the 50 ms latency line."""
        t256 = execution_model.batch_time(BatchShape([PrefillChunk(256, 0)]))
        t512 = execution_model.batch_time(BatchShape([PrefillChunk(512, 0)]))
        assert t256 < 0.055
        assert t512 > 0.055

    def test_decode_iteration_meets_strict_tbt(self, execution_model):
        """A loaded decode batch alone stays well under 50 ms."""
        t = execution_model.decode_batch_time(64, 64 * 2000)
        assert t < 0.050

    def test_weight_streaming_floor(self, execution_model):
        """A single decode token is memory-bound at ~weight/bandwidth."""
        floor = LLAMA3_8B.weight_bytes() / A100_80GB.mem_bandwidth
        t = execution_model.decode_batch_time(1, 128)
        assert t >= floor


class TestDeployments:
    def test_all_table1_deployments_fit(self):
        ExecutionModel(LLAMA3_8B, A100_80GB, tp_degree=1)
        ExecutionModel(QWEN_7B, A100_80GB, tp_degree=2)
        ExecutionModel(LLAMA3_70B, H100_80GB, tp_degree=4)

    def test_oversized_model_rejected(self):
        with pytest.raises(ValueError):
            ExecutionModel(LLAMA3_70B, A100_80GB, tp_degree=1)

    def test_invalid_tp_rejected(self):
        with pytest.raises(ValueError):
            ExecutionModel(LLAMA3_8B, A100_80GB, tp_degree=0)

    def test_tp_speeds_up_prefill(self):
        tp1 = ExecutionModel(QWEN_7B, A100_80GB, tp_degree=1)
        tp2 = ExecutionModel(QWEN_7B, A100_80GB, tp_degree=2)
        assert (
            tp2.peak_prefill_throughput(2048)
            > tp1.peak_prefill_throughput(2048)
        )

    def test_kv_capacity_positive_and_sane(self, execution_model):
        assert 100_000 <= execution_model.kv_capacity_tokens <= 1_000_000

    def test_mha_model_has_less_kv_room(self):
        gqa = ExecutionModel(LLAMA3_8B, A100_80GB)
        mha = ExecutionModel(QWEN_7B, A100_80GB, tp_degree=2)
        # Qwen has 2 GPUs of memory yet still fits fewer tokens: MHA
        # KV is 4x larger per token.
        assert mha.kv_capacity_tokens < gqa.kv_capacity_tokens


class TestHelpers:
    def test_prefill_time_sums_chunks(self, execution_model):
        one_shot = execution_model.batch_time(
            BatchShape([PrefillChunk(512, 0)])
        )
        chunked = execution_model.prefill_time(512, chunk_size=512)
        assert chunked == pytest.approx(one_shot)

    def test_prefill_time_handles_remainder(self, execution_model):
        t = execution_model.prefill_time(300, chunk_size=256)
        t_first = execution_model.batch_time(
            BatchShape([PrefillChunk(256, 0)])
        )
        t_second = execution_model.batch_time(
            BatchShape([PrefillChunk(44, 256)])
        )
        assert t == pytest.approx(t_first + t_second)

    def test_prefill_time_invalid_chunk(self, execution_model):
        with pytest.raises(ValueError):
            execution_model.prefill_time(100, chunk_size=0)

    def test_seconds_per_prefill_token(self, execution_model):
        spt = execution_model.seconds_per_prefill_token()
        assert 5e-5 <= spt <= 5e-4

    def test_batch_shape_totals(self):
        shape = BatchShape(
            [PrefillChunk(100, 0), PrefillChunk(50, 10)], 7, 700
        )
        assert shape.prefill_tokens == 150
        assert shape.total_tokens == 157
