"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import SCALES, _registry, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig04"])
        assert args.experiments == ["fig04"]
        assert args.scale == "smoke"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig04", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRegistry:
    def test_every_paper_artifact_covered(self):
        names = set(_registry())
        expected = {
            "fig01", "fig02", "fig04", "fig05", "fig07", "fig08",
            "fig09", "fig10-11", "fig12-13", "fig14", "fig15",
            "tab04", "tab05", "tab06",
        }
        assert expected <= names

    def test_scales(self):
        assert set(SCALES) == {"smoke", "bench", "full"}


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out
        assert "tab05" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig04(self, capsys, tmp_path):
        out_file = tmp_path / "results.txt"
        code = main(["run", "fig04", "--scale", "smoke",
                     "--out", str(out_file)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "figure-04" in stdout
        assert "figure-04" in out_file.read_text()
