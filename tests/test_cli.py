"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import SCALES, _registry, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig04"])
        assert args.experiments == ["fig04"]
        assert args.scale == "smoke"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig04", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRegistry:
    def test_every_paper_artifact_covered(self):
        names = set(_registry())
        expected = {
            "fig01", "fig02", "fig04", "fig05", "fig07", "fig08",
            "fig09", "fig10-11", "fig12-13", "fig14", "fig15",
            "tab04", "tab05", "tab06",
        }
        assert expected <= names

    def test_scales(self):
        assert set(SCALES) == {"smoke", "bench", "full"}


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out
        assert "tab05" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig04(self, capsys, tmp_path):
        out_file = tmp_path / "results.txt"
        code = main(["run", "fig04", "--scale", "smoke",
                     "--out", str(out_file)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "figure-04" in stdout
        assert "figure-04" in out_file.read_text()


class TestTraceParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "t.jsonl"])
        assert args.command == "trace"
        assert str(args.trace) == "t.jsonl"
        assert args.chrome is None
        assert not args.validate

    def test_run_trace_flags(self):
        args = build_parser().parse_args(
            ["run", "fig09", "--trace-out", "t.jsonl",
             "--metrics-out", "m.prom"]
        )
        assert str(args.trace_out) == "t.jsonl"
        assert str(args.metrics_out) == "m.prom"


class TestTracingEndToEnd:
    def test_run_records_then_trace_converts(self, capsys, tmp_path):
        """Full loop: run with tracing, then validate + convert."""
        import json

        trace_file = tmp_path / "run.jsonl"
        metrics_file = tmp_path / "run.prom"
        # fig06 actually simulates engines (fig04 is analytic, so it
        # would record nothing) and finishes in well under a second.
        code = main(["run", "fig06", "--scale", "smoke",
                     "--trace-out", str(trace_file),
                     "--metrics-out", str(metrics_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "metrics written to" in out
        assert trace_file.stat().st_size > 0
        assert "repro_iterations_total" in metrics_file.read_text()

        # The default observer must be restored after the run.
        from repro.obs.observer import NULL_OBSERVER, get_default_observer

        assert get_default_observer() is NULL_OBSERVER

        assert main(["trace", str(trace_file), "--validate"]) == 0
        assert "schema ok" in capsys.readouterr().out

        chrome_file = tmp_path / "chrome.json"
        assert main(["trace", str(trace_file),
                     "--chrome", str(chrome_file)]) == 0
        payload = json.loads(chrome_file.read_text())
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert spans
        for span in spans:
            for key in ("pid", "tid", "ts", "dur"):
                assert key in span

        assert main(["trace", str(trace_file), "--timeline"]) == 0
        assert "request_id" in capsys.readouterr().out

    def test_trace_command_rejects_corrupt_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "bogus", "ts": 0.0}\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        assert "invalid trace" in capsys.readouterr().err


class TestFaultsCLI:
    def test_validate_parser(self):
        args = build_parser().parse_args(
            ["faults", "validate", "p.json", "--num-replicas", "4"]
        )
        assert args.command == "faults"
        assert args.faults_command == "validate"
        assert str(args.plan) == "p.json"
        assert args.num_replicas == 4

    def test_run_fault_plan_flag(self):
        args = build_parser().parse_args(
            ["run", "faults", "--fault-plan", "chaos.json"]
        )
        assert str(args.fault_plan) == "chaos.json"

    def test_registry_has_faults_experiment(self):
        assert "faults" in _registry()

    def test_validate_good_plan(self, capsys, tmp_path):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"events": [
            {"kind": "crash", "time": 1.0, "replica": 0,
             "recover_after": 2.0},
            {"kind": "slowdown", "time": 0.5, "replica": 1,
             "duration": 3.0},
        ]}))
        assert main(["faults", "validate", str(plan)]) == 0
        assert "valid fault plan (2 events)" in capsys.readouterr().out

    def test_validate_reports_every_problem(self, capsys, tmp_path):
        import json

        plan = tmp_path / "bad.json"
        plan.write_text(json.dumps({"events": [
            {"kind": "crash", "time": -1, "replica": 0},
            {"kind": "warp", "time": 0, "replica": 9},
        ]}))
        code = main(
            ["faults", "validate", str(plan), "--num-replicas", "4"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "events[0]" in err and "events[1]" in err

    def test_validate_bad_json(self, capsys, tmp_path):
        plan = tmp_path / "broken.json"
        plan.write_text("{nope")
        assert main(["faults", "validate", str(plan)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_run_with_invalid_fault_plan(self, capsys, tmp_path):
        import json

        plan = tmp_path / "bad.json"
        plan.write_text(json.dumps(
            {"events": [{"kind": "warp", "time": 0, "replica": 0}]}
        ))
        assert main(["run", "fig04", "--fault-plan", str(plan)]) == 1
        assert "invalid fault plan" in capsys.readouterr().err

    def test_run_arms_and_clears_plan(self, capsys, tmp_path):
        import json

        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({"events": []}))
        code = main(["run", "fig04", "--scale", "smoke",
                     "--fault-plan", str(plan_file)])
        assert code == 0
        assert "armed (0 events)" in capsys.readouterr().out
        # The process default must be cleared after the run.
        from repro.faults import get_default_fault_plan

        assert get_default_fault_plan() is None


class TestPathErrorShape:
    """Every filesystem flag funnels OS errors through one helper, so
    the message shape is identical: ``cannot <action>: <error>``."""

    def test_consistent_prefixes(self, capsys, tmp_path):
        missing = tmp_path / "no-such-dir"
        cases = [
            (["trace", str(missing / "t.jsonl")],
             "cannot read trace:"),
            (["faults", "validate", str(missing / "p.json")],
             "cannot read fault plan:"),
            (["run", "fig04", "--fault-plan", str(missing / "p.json")],
             "cannot read --fault-plan:"),
            (["run", "fig04", "--scale", "smoke",
              "--trace-out", str(missing / "t.jsonl")],
             "cannot open --trace-out:"),
        ]
        for argv, prefix in cases:
            assert main(argv) == 1, argv
            assert prefix in capsys.readouterr().err


class TestHiddenAliases:
    """Legacy underscore spellings still parse but stay out of --help."""

    def test_underscore_spellings_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "fig04", "--trace_out", "t.jsonl",
             "--metrics_out", "m.prom", "--fault_plan", "f.json",
             "--cache_dir", "c", "--log_y"]
        )
        assert str(args.trace_out) == "t.jsonl"
        assert str(args.metrics_out) == "m.prom"
        assert str(args.fault_plan) == "f.json"
        assert str(args.cache_dir) == "c"
        assert args.log_y is True
        args = parser.parse_args(
            ["dashboard", "t.jsonl", "--slo_budget", "0.05",
             "--no_validate"]
        )
        assert args.slo_budget == 0.05
        assert args.no_validate is True
        args = parser.parse_args(
            ["faults", "validate", "p.json", "--num_replicas", "3"]
        )
        assert args.num_replicas == 3

    def test_aliases_hidden_from_help(self, capsys):
        for command in ("run", "serve", "dashboard"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--help"])
            text = capsys.readouterr().out
            assert "--trace_out" not in text
            assert "_out" not in text.replace("summary_out", "")


class TestServeParser:
    def test_defaults(self):
        import math

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port is None
        assert args.speed == math.inf
        assert args.scheduler == "qoserve"
        assert args.num_replicas == 1

    def test_speed_accepts_inf_and_floats(self):
        import math

        parser = build_parser()
        assert parser.parse_args(
            ["serve", "--speed", "inf"]
        ).speed == math.inf
        assert parser.parse_args(
            ["serve", "--speed", "2.5"]
        ).speed == 2.5
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--speed", "0"])
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--speed", "fast"])

    def test_serve_underscore_aliases(self):
        args = build_parser().parse_args(
            ["serve", "--num_replicas", "2", "--chunk_size", "512",
             "--max_queue_depth", "4", "--summary_out", "s.json",
             "--tier_rate", "Q1=3"]
        )
        assert args.num_replicas == 2
        assert args.chunk_size == 512
        assert args.max_queue_depth == 4
        assert str(args.summary_out) == "s.json"
        assert args.tier_rate == ["Q1=3"]


class TestServeCommand:
    @pytest.fixture
    def replay_csv(self, tmp_path):
        from repro.api import build_trace
        from repro.workload import write_azure_csv

        path = tmp_path / "trace.csv"
        trace = build_trace("AzConv", qps=3.0, num_requests=12, seed=5)
        write_azure_csv(trace, path)
        return path

    def test_requires_port_or_replay(self, capsys):
        assert main(["serve"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_offline_replay(self, capsys, tmp_path, replay_csv):
        import json

        summary_out = tmp_path / "summary.json"
        code = main(["serve", "--replay", str(replay_csv),
                     "--scheduler", "fcfs",
                     "--summary-out", str(summary_out)])
        out = capsys.readouterr().out
        assert code == 0
        assert "admitted=12" in out
        payload = json.loads(summary_out.read_text())
        assert payload["gateway"]["admitted_total"] == 12
        assert payload["summary"]["num_requests"] == 12

    def test_offline_replay_with_shedding(self, capsys, replay_csv):
        code = main(["serve", "--replay", str(replay_csv),
                     "--scheduler", "fcfs", "--rate", "0.2",
                     "--burst", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shed=0" not in out

    def test_bad_tier_rate(self, capsys):
        assert main(["serve", "--replay", "x.csv",
                     "--tier-rate", "Q1"]) == 2
        assert "TIER=QPS" in capsys.readouterr().err

    def test_unknown_deployment(self, capsys, replay_csv):
        code = main(["serve", "--replay", str(replay_csv),
                     "--deployment", "bogus"])
        assert code == 2
        assert "unknown deployment" in capsys.readouterr().err

    def test_unknown_scheduler(self, capsys, replay_csv):
        code = main(["serve", "--replay", str(replay_csv),
                     "--scheduler", "bogus"])
        assert code == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_replay_path_error(self, capsys, tmp_path):
        code = main(["serve", "--replay",
                     str(tmp_path / "missing" / "t.csv")])
        assert code == 1
        assert "cannot read --replay:" in capsys.readouterr().err

    def test_summary_out_path_error(self, capsys, tmp_path, replay_csv):
        code = main(["serve", "--replay", str(replay_csv),
                     "--scheduler", "fcfs",
                     "--summary-out", str(tmp_path / "no" / "s.json")])
        assert code == 1
        assert "cannot write --summary-out:" in capsys.readouterr().err


class TestTopParser:
    def test_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.command == "top"
        assert args.url == "http://127.0.0.1:8080"
        assert args.incidents is None
        assert not args.once
        assert args.interval == 1.0
        assert args.frames == 0

    def test_incidents_mode(self):
        args = build_parser().parse_args(
            ["top", "--incidents", "i.jsonl", "--once"]
        )
        assert str(args.incidents) == "i.jsonl"
        assert args.once

    def test_spans_flags(self):
        args = build_parser().parse_args(
            ["trace", "t.jsonl", "--spans", "s.json",
             "--spans-format", "chrome"]
        )
        assert str(args.spans) == "s.json"
        assert args.spans_format == "chrome"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "t.jsonl", "--spans", "s.json",
                 "--spans-format", "protobuf"]
            )

    def test_observability_underscore_aliases(self):
        args = build_parser().parse_args(
            ["serve", "--incidents_out", "i.jsonl"]
        )
        assert str(args.incidents_out) == "i.jsonl"
        args = build_parser().parse_args(
            ["trace", "t.jsonl", "--spans", "s.json",
             "--spans_format", "chrome"]
        )
        assert args.spans_format == "chrome"


class TestFlightRecorderCLI:
    @pytest.fixture
    def overload_csv(self, tmp_path):
        """An arrival-compressed AzCode burst that overloads fcfs."""
        from repro.api import build_trace
        from repro.workload import write_azure_csv

        path = tmp_path / "burst.csv"
        trace = build_trace(
            "AzCode", qps=1.0, num_requests=60, seed=11
        ).scaled_arrivals(8.0)
        write_azure_csv(trace, path)
        return path

    def test_replay_records_incidents_then_top_renders(
        self, capsys, tmp_path, overload_csv
    ):
        incidents = tmp_path / "incidents.jsonl"
        code = main(["serve", "--replay", str(overload_csv),
                     "--scheduler", "fcfs",
                     "--incidents-out", str(incidents)])
        out = capsys.readouterr().out
        assert code == 0
        assert "flight recorder:" in out
        assert str(incidents) in out
        assert incidents.stat().st_size > 0

        assert main(["top", "--incidents", str(incidents),
                     "--once"]) == 0
        rendered = capsys.readouterr().out
        assert "deadline_violation" in rendered
        assert "incident(s)" in rendered

    def test_quiet_run_leaves_no_incident_file(
        self, capsys, tmp_path
    ):
        from repro.api import build_trace
        from repro.workload import write_azure_csv

        csv = tmp_path / "calm.csv"
        write_azure_csv(
            build_trace("AzConv", qps=0.5, num_requests=5, seed=5), csv
        )
        incidents = tmp_path / "incidents.jsonl"
        code = main(["serve", "--replay", str(csv),
                     "--scheduler", "qoserve",
                     "--incidents-out", str(incidents)])
        out = capsys.readouterr().out
        assert code == 0
        assert "flight recorder: 0 incident(s)" in out
        assert not incidents.exists()

    def test_top_incidents_path_error(self, capsys, tmp_path):
        code = main(["top", "--incidents",
                     str(tmp_path / "missing.jsonl")])
        assert code == 1
        assert "cannot read --incidents:" in capsys.readouterr().err


class TestSpansCLI:
    def test_trace_spans_exports(self, capsys, tmp_path):
        import json

        trace_file = tmp_path / "run.jsonl"
        assert main(["run", "fig06", "--scale", "smoke",
                     "--trace-out", str(trace_file)]) == 0
        capsys.readouterr()

        otlp = tmp_path / "spans.json"
        assert main(["trace", str(trace_file),
                     "--spans", str(otlp)]) == 0
        out = capsys.readouterr().out
        assert "span tree(s) written" in out
        assert "(otlp)" in out
        payload = json.loads(otlp.read_text())
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans

        chrome = tmp_path / "spans.chrome.json"
        assert main(["trace", str(trace_file), "--spans", str(chrome),
                     "--spans-format", "chrome"]) == 0
        assert "(chrome)" in capsys.readouterr().out
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_spans_path_error(self, capsys, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        trace_file.write_text("")
        code = main(["trace", str(trace_file),
                     "--spans", str(tmp_path / "no" / "s.json")])
        assert code == 1
        assert "cannot write --spans:" in capsys.readouterr().err
