"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import SCALES, _registry, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig04"])
        assert args.experiments == ["fig04"]
        assert args.scale == "smoke"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig04", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRegistry:
    def test_every_paper_artifact_covered(self):
        names = set(_registry())
        expected = {
            "fig01", "fig02", "fig04", "fig05", "fig07", "fig08",
            "fig09", "fig10-11", "fig12-13", "fig14", "fig15",
            "tab04", "tab05", "tab06",
        }
        assert expected <= names

    def test_scales(self):
        assert set(SCALES) == {"smoke", "bench", "full"}


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out
        assert "tab05" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig04(self, capsys, tmp_path):
        out_file = tmp_path / "results.txt"
        code = main(["run", "fig04", "--scale", "smoke",
                     "--out", str(out_file)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "figure-04" in stdout
        assert "figure-04" in out_file.read_text()


class TestTraceParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "t.jsonl"])
        assert args.command == "trace"
        assert str(args.trace) == "t.jsonl"
        assert args.chrome is None
        assert not args.validate

    def test_run_trace_flags(self):
        args = build_parser().parse_args(
            ["run", "fig09", "--trace-out", "t.jsonl",
             "--metrics-out", "m.prom"]
        )
        assert str(args.trace_out) == "t.jsonl"
        assert str(args.metrics_out) == "m.prom"


class TestTracingEndToEnd:
    def test_run_records_then_trace_converts(self, capsys, tmp_path):
        """Full loop: run with tracing, then validate + convert."""
        import json

        trace_file = tmp_path / "run.jsonl"
        metrics_file = tmp_path / "run.prom"
        # fig06 actually simulates engines (fig04 is analytic, so it
        # would record nothing) and finishes in well under a second.
        code = main(["run", "fig06", "--scale", "smoke",
                     "--trace-out", str(trace_file),
                     "--metrics-out", str(metrics_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "metrics written to" in out
        assert trace_file.stat().st_size > 0
        assert "repro_iterations_total" in metrics_file.read_text()

        # The default observer must be restored after the run.
        from repro.obs.observer import NULL_OBSERVER, get_default_observer

        assert get_default_observer() is NULL_OBSERVER

        assert main(["trace", str(trace_file), "--validate"]) == 0
        assert "schema ok" in capsys.readouterr().out

        chrome_file = tmp_path / "chrome.json"
        assert main(["trace", str(trace_file),
                     "--chrome", str(chrome_file)]) == 0
        payload = json.loads(chrome_file.read_text())
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert spans
        for span in spans:
            for key in ("pid", "tid", "ts", "dur"):
                assert key in span

        assert main(["trace", str(trace_file), "--timeline"]) == 0
        assert "request_id" in capsys.readouterr().out

    def test_trace_command_rejects_corrupt_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "bogus", "ts": 0.0}\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        assert "invalid trace" in capsys.readouterr().err
