"""Differential run forensics: repro.obs.diff and the repro diff CLI.

The two acceptance pins live here: diffing a run against itself (or
the arrays engine against the objects engine on the same workload) is
an empty delta, and diffing two schedulers reports the first
diverging event plus cause deltas that sum exactly to the goodput
gap, byte-identically across recomputation.
"""

import json

import pytest

from repro.api import ServeConfig, Session, build_trace
from repro.cli import main
from repro.obs import (
    ListSink,
    TraceRecorder,
    TracingObserver,
    diff_runs,
    find_first_divergence,
    render_diff_html,
    render_diff_terminal,
)
from repro.obs.diff import ATTRIBUTION_TOL

SCHEDULERS = ("qoserve", "medha", "fcfs", "edf")
ENGINES = ("objects", "arrays")


def capture_events(scheduler, engine="objects", qps=3.0,
                   num_requests=40, seed=7, dataset="AzCode"):
    """Run one traced simulation, return its serialized events."""
    sink = ListSink()
    session = Session(
        ServeConfig(scheduler=scheduler, engine=engine),
        observer=TracingObserver(TraceRecorder([sink])),
    )
    trace = build_trace(
        dataset, qps=1.0, num_requests=num_requests, seed=seed
    ).scaled_arrivals(qps)
    for request in trace:
        session.submit(request)
    session.advance()
    return sink.events


@pytest.fixture(scope="module")
def qoserve_events():
    return capture_events("qoserve")


@pytest.fixture(scope="module")
def medha_events():
    return capture_events("medha")


class TestSelfDiffDeterminism:
    """Satellite: self-diff is empty for every scheduler and engine."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_self_diff_is_empty(self, scheduler, engine):
        first = capture_events(scheduler, engine=engine,
                               num_requests=25)
        second = capture_events(scheduler, engine=engine,
                                num_requests=25)
        diff = diff_runs(first, second)
        assert diff.identical
        assert diff.first_divergence is None
        assert diff.goodput["good_delta"] == 0
        assert diff.goodput["goodput_gap_pct"] == 0.0
        assert not any(diff.cause_goodput_delta.values())
        assert diff.flips == {
            "regressed": 0, "fixed": 0, "cause_changed": 0,
        }
        assert all(
            delta.flip == "" and delta.goodput_delta == 0
            for delta in diff.requests
        )
        assert all(
            value == 0.0
            for totals in diff.phase_total_deltas.values()
            for value in totals.values()
        )

    def test_arrays_vs_objects_zero_divergence(self):
        """Acceptance: the engine-parity pinned trace diffs empty."""
        objects = capture_events("qoserve", engine="objects")
        arrays = capture_events("qoserve", engine="arrays")
        diff = diff_runs(objects, arrays, base_label="objects",
                         other_label="arrays")
        assert diff.identical
        assert diff.first_divergence is None


class TestSchedulerDiff:
    def test_reports_first_divergence(self, qoserve_events,
                                      medha_events):
        diff = diff_runs(qoserve_events, medha_events,
                         base_label="qoserve", other_label="medha")
        assert not diff.identical
        divergence = diff.first_divergence
        assert divergence is not None
        # Streams agree up to the divergence index and not at it.
        canon = lambda e: json.dumps(e, sort_keys=True)  # noqa: E731
        for i in range(divergence.index):
            assert canon(qoserve_events[i]) == canon(medha_events[i])
        assert (
            divergence.base_event is None
            or divergence.other_event is None
            or canon(divergence.base_event)
            != canon(divergence.other_event)
        )
        # The context ring holds shared events just before the split.
        for event in divergence.context:
            assert event in qoserve_events[:divergence.index]

    def test_cause_deltas_sum_to_goodput_gap(self, qoserve_events,
                                             medha_events):
        """Acceptance: exact conservation of the attribution."""
        diff = diff_runs(qoserve_events, medha_events)
        assert diff.attribution_residual <= ATTRIBUTION_TOL
        assert (
            sum(diff.cause_goodput_delta.values())
            == diff.goodput["good_delta"]
        )
        # Per-tier deltas tile the global ones.
        per_tier = {}
        for deltas in diff.tier_cause_goodput_delta.values():
            for cause, delta in deltas.items():
                per_tier[cause] = per_tier.get(cause, 0) + delta
        assert per_tier == {
            c: d for c, d in diff.cause_goodput_delta.items()
        }

    def test_byte_identical_across_recomputation(self, qoserve_events,
                                                 medha_events):
        """Acceptance: the serialized diff is deterministic."""
        serialize = lambda d: json.dumps(  # noqa: E731
            d.to_dict(), sort_keys=True
        )
        first = serialize(diff_runs(qoserve_events, medha_events))
        second = serialize(diff_runs(qoserve_events, medha_events))
        assert first == second

    def test_flip_direction_and_charging(self, qoserve_events,
                                         medha_events):
        diff = diff_runs(qoserve_events, medha_events)
        for delta in diff.requests:
            if delta.flip == "regressed":
                assert not delta.violated_base and delta.violated_other
                assert delta.goodput_delta == -1
                assert delta.cause == delta.cause_other
            elif delta.flip == "fixed":
                assert delta.violated_base and not delta.violated_other
                assert delta.goodput_delta == 1
                assert delta.cause == delta.cause_base
            else:
                assert delta.goodput_delta == 0

    def test_phase_deltas_and_sketches(self, qoserve_events,
                                       medha_events):
        diff = diff_runs(qoserve_events, medha_events)
        assert diff.phase_total_deltas
        for tier, sketches in diff.phase_delta_sketches.items():
            assert "ttft" in sketches and "ttlt" in sketches
            # Every aligned request of the tier contributed a sample.
            count = sum(
                1 for d in diff.requests
                if d.status == "aligned" and d.tier == tier
            )
            assert sketches["ttlt"].count == count


class TestAlignment:
    """Hand-built traces: presence mismatches and cause flips."""

    @staticmethod
    def completion(request_id, tier="Q2", arrival=0.0, first=1.0,
                   done=2.0, violated=False):
        return {
            "kind": "request_completed", "ts": done, "replica_id": 0,
            "request_id": request_id, "tier": tier,
            "arrival_time": arrival, "scheduled_first_time": 0.5,
            "first_token_time": first, "completion_time": done,
            "relegated": False, "violated": violated, "evictions": 0,
        }

    def test_only_base_good_request_charged(self):
        base = [self.completion(1), self.completion(2)]
        other = [self.completion(1)]
        diff = diff_runs(base, other)
        assert diff.only_base == [2]
        assert diff.cause_goodput_delta == {"missing_in_other": -1}
        assert diff.goodput["good_delta"] == -1
        assert diff.attribution_residual <= ATTRIBUTION_TOL

    def test_only_other_good_request_charged(self):
        base = [self.completion(1)]
        other = [self.completion(1), self.completion(3)]
        diff = diff_runs(base, other)
        assert diff.only_other == [3]
        assert diff.cause_goodput_delta == {"missing_in_base": 1}
        assert diff.goodput["good_delta"] == 1

    def test_missing_violated_request_not_charged(self):
        # A request the other run dropped was already violated: its
        # absence changes completed counts but not goodput.
        base = [self.completion(1), self.completion(2, violated=True)]
        other = [self.completion(1)]
        diff = diff_runs(base, other)
        assert diff.goodput["good_delta"] == 0
        assert not diff.cause_goodput_delta

    def test_regression_flip(self):
        base = [self.completion(1)]
        other = [self.completion(1, done=700.0, violated=True)]
        diff = diff_runs(base, other)
        (delta,) = diff.requests
        assert delta.flip == "regressed"
        assert diff.flips["regressed"] == 1
        assert delta.cause is not None
        assert diff.goodput["good_delta"] == -1
        assert diff.attribution_residual <= ATTRIBUTION_TOL

    def test_slack_uses_governing_slo(self):
        # Q2 is TTLT-governed (600 s): slack = 600 - ttlt.
        diff = diff_runs([self.completion(1, done=100.0)],
                         [self.completion(1, done=150.0)])
        (delta,) = diff.requests
        assert delta.slack_base == pytest.approx(500.0)
        assert delta.slack_other == pytest.approx(450.0)
        assert delta.slack_delta == pytest.approx(-50.0)
        assert delta.ttlt_delta == pytest.approx(50.0)

    def test_empty_inputs(self):
        diff = diff_runs([], [])
        assert diff.identical
        assert diff.aligned == 0
        assert render_diff_terminal(diff)


class TestFirstDivergence:
    def test_identical_streams(self):
        events = [{"kind": "a", "ts": 1.0}, {"kind": "b", "ts": 2.0}]
        assert find_first_divergence(events, list(events)) is None

    def test_length_divergence(self):
        events = [{"kind": "a", "ts": 1.0}, {"kind": "b", "ts": 2.0}]
        divergence = find_first_divergence(events, events[:1])
        assert divergence is not None
        assert divergence.index == 1
        assert divergence.other_event is None
        assert divergence.base_event == events[1]

    def test_context_ring_is_bounded(self):
        base = [{"kind": "e", "ts": float(i)} for i in range(20)]
        other = list(base)
        other[15] = {"kind": "x", "ts": 15.0}
        divergence = find_first_divergence(base, other, context=4)
        assert divergence is not None
        assert divergence.index == 15
        assert len(divergence.context) == 4
        assert divergence.context == tuple(base[11:15])
        assert divergence.base_after
        assert divergence.other_after


class TestRendering:
    def test_terminal_report(self, qoserve_events, medha_events):
        diff = diff_runs(qoserve_events, medha_events,
                         base_label="qoserve", other_label="medha")
        text = render_diff_terminal(diff)
        assert "first divergence" in text
        assert "goodput change by cause" in text
        assert "qoserve" in text and "medha" in text

    def test_terminal_identical(self, qoserve_events):
        diff = diff_runs(qoserve_events, list(qoserve_events))
        assert "byte-identical" in render_diff_terminal(diff)

    def test_html_single_file(self, qoserve_events, medha_events):
        diff = diff_runs(qoserve_events, medha_events)
        html = render_diff_html(diff, title="t")
        assert html.startswith("<!DOCTYPE html>")
        assert "<script src" not in html and "<link" not in html
        assert "First divergence" in html


class TestCli:
    @pytest.fixture(scope="class")
    def trace_files(self, tmp_path_factory, qoserve_events,
                    medha_events):
        root = tmp_path_factory.mktemp("diffcli")
        paths = {}
        for name, events in (("qoserve", qoserve_events),
                             ("medha", medha_events)):
            path = root / f"{name}.jsonl"
            with path.open("w") as sink:
                for event in events:
                    sink.write(json.dumps(event) + "\n")
            paths[name] = path
        return paths

    def test_diff_command(self, trace_files, tmp_path, capsys):
        json_out = tmp_path / "delta.json"
        html_out = tmp_path / "delta.html"
        code = main([
            "diff", str(trace_files["qoserve"]),
            str(trace_files["medha"]),
            "--json", str(json_out), "--out", str(html_out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "first divergence" in stdout
        payload = json.loads(json_out.read_text())
        assert payload["base_label"] == "qoserve"
        assert payload["attribution_residual"] <= ATTRIBUTION_TOL
        assert html_out.read_text().startswith("<!DOCTYPE html>")

    def test_diff_json_deterministic(self, trace_files, tmp_path):
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main([
                "diff", str(trace_files["qoserve"]),
                str(trace_files["medha"]), "--json", str(out),
            ]) == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]

    def test_expect_identical_pass(self, trace_files, tmp_path,
                                   capsys):
        copy = tmp_path / "copy.jsonl"
        copy.write_bytes(trace_files["qoserve"].read_bytes())
        code = main([
            "diff", str(trace_files["qoserve"]), str(copy),
            "--expect-identical",
        ])
        assert code == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_expect_identical_fail(self, trace_files, capsys):
        code = main([
            "diff", str(trace_files["qoserve"]),
            str(trace_files["medha"]), "--expect-identical",
        ])
        assert code == 1
        assert "diverge" in capsys.readouterr().err

    def test_three_way_diff(self, trace_files, tmp_path, capsys):
        copy = tmp_path / "again.jsonl"
        copy.write_bytes(trace_files["qoserve"].read_bytes())
        code = main([
            "diff", str(trace_files["qoserve"]),
            str(trace_files["medha"]), str(copy),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out  # the self comparison
        assert "first divergence" in out  # the medha comparison

    def test_single_trace_rejected(self, trace_files, capsys):
        assert main(["diff", str(trace_files["qoserve"])]) == 2

    def test_missing_trace(self, trace_files, tmp_path):
        assert main([
            "diff", str(trace_files["qoserve"]),
            str(tmp_path / "nope.jsonl"),
        ]) == 1


class TestBenchDiffBaseline:
    """``repro bench --diff-baseline``: behavioral identity gate."""

    def test_record_then_verify_then_catch_drift(self, tmp_path):
        from repro.bench import diff_baseline_check

        baseline = tmp_path / "baseline.jsonl"
        first = diff_baseline_check(baseline, quick=True)
        assert first["recorded"] is True
        assert baseline.exists()
        assert first["num_events"] > 0

        second = diff_baseline_check(baseline, quick=True)
        assert second["recorded"] is False
        assert second["identical"] is True

        # Corrupt one recorded event: the gate must report exactly
        # where behavior diverged.
        lines = baseline.read_text().splitlines()
        tampered = json.loads(lines[3])
        tampered["ts"] = tampered["ts"] + 1.0
        lines[3] = json.dumps(tampered, sort_keys=True,
                              separators=(",", ":"))
        baseline.write_text("\n".join(lines) + "\n")
        third = diff_baseline_check(baseline, quick=True)
        assert third["identical"] is False
        assert third["first_divergence_index"] == 3
