"""Unit tests for the classic baseline policies."""

from repro.core.decode_estimator import OracleDecodeEstimator
from repro.schedulers import (
    EDFScheduler,
    FCFSScheduler,
    SJFScheduler,
    SRPFScheduler,
)
from tests.conftest import Q1, Q2, Q3, make_request


class TestFCFS:
    def test_orders_by_arrival(self):
        scheduler = FCFSScheduler()
        early = make_request(arrival_time=1.0, prompt_tokens=9000)
        late = make_request(arrival_time=2.0, prompt_tokens=10)
        assert scheduler.priority(early, 5.0) < scheduler.priority(late, 5.0)

    def test_ignores_qos(self):
        scheduler = FCFSScheduler()
        urgent = make_request(arrival_time=2.0, qos=Q1)
        relaxed = make_request(arrival_time=1.0, qos=Q3)
        assert scheduler.priority(relaxed, 0.0) < scheduler.priority(
            urgent, 0.0
        )


class TestSJF:
    def test_prefers_short_total_job(self):
        scheduler = SJFScheduler(decode_estimator=OracleDecodeEstimator())
        short = make_request(prompt_tokens=100, decode_tokens=5)
        long = make_request(prompt_tokens=100, decode_tokens=500)
        assert scheduler.priority(short, 0.0) < scheduler.priority(long, 0.0)

    def test_decode_weight_matters(self):
        scheduler = SJFScheduler(
            decode_estimator=OracleDecodeEstimator(), decode_token_weight=100
        )
        prompty = make_request(prompt_tokens=5000, decode_tokens=1)
        decody = make_request(prompt_tokens=100, decode_tokens=500)
        # 500 decode tokens at weight 100 outweigh a 5000-token prompt.
        assert scheduler.priority(prompty, 0.0) < scheduler.priority(
            decody, 0.0
        )

    def test_not_preemptive_by_progress(self):
        """SJF keys on total size, so progress does not change rank."""
        scheduler = SJFScheduler(decode_estimator=OracleDecodeEstimator())
        r = make_request(prompt_tokens=1000, decode_tokens=10)
        before = scheduler.priority(r, 0.0)
        r.prefill_done = 900
        assert scheduler.priority(r, 0.0) == before

    def test_observes_completions(self):
        scheduler = SJFScheduler()
        r = make_request(app_id="app", decode_tokens=123)
        for _ in range(12):
            scheduler.on_request_complete(r, 0.0)
        estimate = scheduler.decode_estimator.estimate(
            make_request(app_id="app")
        )
        assert estimate == 123.0


class TestSRPF:
    def test_prefers_less_remaining(self):
        scheduler = SRPFScheduler()
        fresh = make_request(prompt_tokens=500)
        nearly_done = make_request(prompt_tokens=5000)
        nearly_done.prefill_done = 4900
        assert scheduler.priority(nearly_done, 0.0) < scheduler.priority(
            fresh, 0.0
        )

    def test_preemptive_reranking(self):
        """A shorter arrival preempts a long prompt mid-prefill."""
        scheduler = SRPFScheduler()
        long = make_request(prompt_tokens=8000)
        long.prefill_done = 2000  # 6000 remaining
        short = make_request(prompt_tokens=500)
        assert scheduler.priority(short, 0.0) < scheduler.priority(long, 0.0)


class TestEDF:
    def test_orders_by_deadline(self):
        scheduler = EDFScheduler()
        tight = make_request(arrival_time=0.0, qos=Q1)      # deadline 6
        loose = make_request(arrival_time=0.0, qos=Q2)      # deadline 600
        assert scheduler.priority(tight, 0.0) < scheduler.priority(
            loose, 0.0
        )

    def test_late_interactive_beats_early_batch(self):
        scheduler = EDFScheduler()
        batch = make_request(arrival_time=0.0, qos=Q3)      # deadline 1800
        chat = make_request(arrival_time=100.0, qos=Q1)     # deadline 106
        assert scheduler.priority(chat, 100.0) < scheduler.priority(
            batch, 100.0
        )

    def test_ignores_length(self):
        scheduler = EDFScheduler()
        short = make_request(arrival_time=1.0, prompt_tokens=10, qos=Q1)
        long = make_request(arrival_time=0.0, prompt_tokens=9000, qos=Q1)
        assert scheduler.priority(long, 0.0) < scheduler.priority(short, 0.0)


class TestNames:
    def test_policy_names(self):
        assert FCFSScheduler().name == "FCFS"
        assert SJFScheduler().name == "SJF"
        assert SRPFScheduler().name == "SRPF"
        assert EDFScheduler().name == "EDF"
