"""Unit tests for live telemetry frames and ``repro top`` rendering
(repro.obs.live)."""

import json

from repro.api import ServeConfig, Session, build_trace
from repro.obs import (
    FlightRecorder,
    RingSink,
    TraceRecorder,
    TracingObserver,
    build_live_snapshot,
    render_incidents,
    render_top,
)
from repro.serve import AdmissionConfig, GatewayConfig, ServeGateway
from repro.workload.datasets import AZURE_CONV


def _replayed_gateway(observer=None, admission=None):
    session = Session(
        ServeConfig(scheduler="fcfs"),
        **({"observer": observer} if observer is not None else {}),
    )
    gateway = ServeGateway(
        session,
        config=GatewayConfig(
            admission=admission or AdmissionConfig()
        ),
    )
    trace = build_trace(AZURE_CONV, qps=4.0, num_requests=20, seed=9)
    gateway.replay(trace)
    return gateway


class TestSnapshot:
    def test_minimal_gateway_frame(self):
        """Without a tracing observer only the always-on state shows."""
        gateway = _replayed_gateway()
        snapshot = build_live_snapshot(gateway)
        assert snapshot["speed"] is None  # inf is not JSON
        assert snapshot["virtual_now"] > 0
        assert snapshot["queue_depth"] == 0  # drained after replay
        assert snapshot["gateway"]["admitted_total"] == 20
        assert "latency_quantiles" not in snapshot
        assert "burn_rate" not in snapshot
        assert "incidents" not in snapshot
        json.dumps(snapshot)  # strict JSON

    def test_goodput_per_tier(self):
        gateway = _replayed_gateway()
        snapshot = build_live_snapshot(gateway)
        goodput = snapshot["goodput"]
        assert sum(row["offered"] for row in goodput.values()) == 20
        for row in goodput.values():
            assert row["completed"] + row["shed"] <= row["offered"]
            assert 0.0 <= row["goodput"] <= 1.0

    def test_shed_requests_counted(self):
        gateway = _replayed_gateway(
            admission=AdmissionConfig(rate=0.5, burst=1.0)
        )
        snapshot = build_live_snapshot(gateway)
        assert sum(
            row["shed"] for row in snapshot["goodput"].values()
        ) == gateway.stats.shed_total > 0

    def test_tracing_observer_adds_quantiles_and_burn(self):
        observer = TracingObserver(TraceRecorder([RingSink()]))
        gateway = _replayed_gateway(observer=observer)
        snapshot = build_live_snapshot(gateway)
        quantiles = snapshot["latency_quantiles"]
        assert set(quantiles) <= {"ttft", "ttlt", "tbt"}
        assert "ttft" in quantiles
        for tiers in quantiles.values():
            for row in tiers.values():
                assert row["count"] > 0
                assert row["p50"] is not None
                assert row["p50"] <= row["p95"] <= row["p99"]
        assert snapshot["burn_rate"]["max"] >= 0.0
        json.dumps(snapshot)

    def test_flight_recorder_section(self, tmp_path):
        observer = TracingObserver(TraceRecorder([RingSink()]))
        observer.flight_recorder = FlightRecorder(
            tmp_path / "incidents.jsonl"
        )
        gateway = _replayed_gateway(observer=observer)
        snapshot = build_live_snapshot(gateway)
        incidents = snapshot["incidents"]
        assert incidents["triggered"] == incidents["written"] == 0
        assert incidents["path"].endswith("incidents.jsonl")

    def test_token_bucket_fill_is_a_pure_peek(self):
        gateway = _replayed_gateway(
            admission=AdmissionConfig(rate=1.0, burst=4.0)
        )
        before = build_live_snapshot(gateway)["token_bucket_fill"]
        after = build_live_snapshot(gateway)["token_bucket_fill"]
        assert before == after
        for fill in before.values():
            assert 0.0 <= fill <= 4.0


class TestRenderTop:
    def test_renders_full_frame(self, tmp_path):
        observer = TracingObserver(TraceRecorder([RingSink()]))
        observer.flight_recorder = FlightRecorder(
            tmp_path / "incidents.jsonl"
        )
        gateway = _replayed_gateway(observer=observer)
        text = render_top(build_live_snapshot(gateway))
        assert "repro top" in text
        assert "speed=inf" in text
        assert "tier" in text and "goodput" in text
        assert "ttft" in text
        assert "burn rate" in text
        assert "incidents: 0 written" in text

    def test_renders_minimal_frame(self):
        text = render_top(build_live_snapshot(_replayed_gateway()))
        assert "repro top" in text
        assert "burn rate" not in text
        assert "incidents" not in text

    def test_survives_json_roundtrip(self):
        """The SSE client renders exactly what the wire carried."""
        gateway = _replayed_gateway(
            observer=TracingObserver(TraceRecorder([RingSink()]))
        )
        snapshot = build_live_snapshot(gateway)
        roundtripped = json.loads(json.dumps(snapshot))
        assert render_top(roundtripped) == render_top(snapshot)


class TestRenderIncidents:
    def test_empty(self):
        assert render_incidents([]) == "(no incidents recorded)"

    def test_table_rows(self):
        incidents = [
            {"trigger": "deadline_violation", "ts": 2.0,
             "request_id": 7, "tier": "Q1",
             "dominant_cause": "chunk_stall", "num_events": 12},
            {"trigger": "burn_rate", "ts": 60.0, "burn_rate": 3.5,
             "dominant_cause": "admission_queue", "num_events": 40},
        ]
        text = render_incidents(incidents)
        assert "deadline_violation" in text
        assert "chunk_stall" in text
        assert "3.50" in text
        assert text.endswith("2 incident(s)")
