"""Unit tests for decode-length estimation."""

import pytest

from repro.core.decode_estimator import (
    HistoryDecodeEstimator,
    OracleDecodeEstimator,
    StaticDecodeEstimator,
)
from tests.conftest import make_request


class TestStaticAndOracle:
    def test_static_returns_constant(self):
        est = StaticDecodeEstimator(tokens=333.0)
        assert est.estimate(make_request(decode_tokens=5)) == 333.0

    def test_static_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StaticDecodeEstimator(tokens=0)

    def test_oracle_reads_ground_truth(self):
        est = OracleDecodeEstimator()
        assert est.estimate(make_request(decode_tokens=77)) == 77.0


class TestHistoryEstimator:
    def test_prior_before_enough_history(self):
        est = HistoryDecodeEstimator(prior_tokens=256.0, min_history=5)
        request = make_request(app_id="chat")
        assert est.estimate(request) == 256.0
        for _ in range(4):
            est.observe(make_request(app_id="chat", decode_tokens=100))
        assert est.estimate(request) == 256.0  # still below min_history

    def test_mean_plus_two_sigma(self):
        """Section 3.4: over-approximate by two standard deviations."""
        est = HistoryDecodeEstimator(min_history=3, margin_stds=2.0)
        for tokens in (100, 200, 300):
            est.observe(make_request(app_id="a", decode_tokens=tokens))
        # mean=200, sample std=100 -> estimate 400.
        assert est.estimate(make_request(app_id="a")) == pytest.approx(400.0)

    def test_constant_history_zero_std(self):
        est = HistoryDecodeEstimator(min_history=2)
        for _ in range(5):
            est.observe(make_request(app_id="a", decode_tokens=50))
        assert est.estimate(make_request(app_id="a")) == pytest.approx(50.0)

    def test_per_application_isolation(self):
        est = HistoryDecodeEstimator(min_history=1, margin_stds=0.0)
        est.observe(make_request(app_id="short", decode_tokens=10))
        est.observe(make_request(app_id="long", decode_tokens=1000))
        assert est.estimate(make_request(app_id="short")) == 10.0
        assert est.estimate(make_request(app_id="long")) == 1000.0

    def test_history_size(self):
        est = HistoryDecodeEstimator()
        assert est.history_size("x") == 0
        est.observe(make_request(app_id="x"))
        assert est.history_size("x") == 1

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            HistoryDecodeEstimator(margin_stds=-1.0)

    def test_estimate_overestimates_typical_request(self):
        """With the 2-sigma margin, most requests are over-estimated —
        the conservative direction for TTLT deadline projections."""
        est = HistoryDecodeEstimator(min_history=5)
        lengths = [20, 30, 40, 50, 60, 35, 45]
        for tokens in lengths:
            est.observe(make_request(app_id="a", decode_tokens=tokens))
        estimate = est.estimate(make_request(app_id="a"))
        assert estimate > sum(lengths) / len(lengths)
