"""Unit tests for fault plans, policies and the injector."""

import math

import numpy as np
import pytest

from repro.faults import (
    FAULT_PRIORITY,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    ReplicaCrash,
    ReplicaSlowdownFault,
    ResilienceConfig,
    RetryPolicy,
    get_default_fault_plan,
    set_default_fault_plan,
    validate_plan_dict,
)
from repro.simcore import Simulator


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            ReplicaCrash(time=9.0, replica_id=0),
            ReplicaSlowdownFault(time=1.0, replica_id=1, duration=2.0),
            ReplicaCrash(time=5.0, replica_id=2, recover_after=1.0),
        ))
        assert [e.time for e in plan.events] == [1.0, 5.0, 9.0]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().is_empty
        assert len(FaultPlan()) == 0

    def test_replicas_touched(self):
        plan = FaultPlan(events=(
            ReplicaCrash(time=1.0, replica_id=3),
            ReplicaSlowdownFault(time=2.0, replica_id=1, duration=1.0),
        ))
        assert plan.replicas_touched() == {1, 3}

    def test_round_trip_through_json(self, tmp_path):
        plan = FaultPlan(events=(
            ReplicaCrash(time=3.0, replica_id=0, recover_after=2.5),
            ReplicaCrash(time=7.0, replica_id=1),  # never recovers
            ReplicaSlowdownFault(time=1.0, replica_id=2, duration=4.0,
                                 factor=2.5),
        ))
        path = tmp_path / "plan.json"
        plan.to_file(path)
        loaded = FaultPlan.from_file(path)
        assert loaded == plan
        assert math.isinf(loaded.events[-1].recover_after)

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_file(path)

    def test_from_dict_reports_all_errors(self):
        payload = {"events": [
            {"kind": "crash", "time": -1, "replica": 0},
            {"kind": "warp", "time": 0, "replica": 0},
        ]}
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.from_dict(payload)
        message = str(excinfo.value)
        assert "events[0]" in message and "events[1]" in message


class TestValidatePlanDict:
    def test_valid_plan_no_errors(self):
        payload = {"events": [
            {"kind": "crash", "time": 1.0, "replica": 0,
             "recover_after": 2.0},
            {"kind": "slowdown", "time": 0.0, "replica": 1,
             "duration": 5.0, "factor": 3.0},
        ]}
        assert validate_plan_dict(payload) == []

    def test_not_an_object(self):
        assert validate_plan_dict([1, 2]) != []

    def test_missing_events_key(self):
        errors = validate_plan_dict({})
        assert any("events" in e for e in errors)

    def test_replica_range_check(self):
        payload = {"events": [{"kind": "crash", "time": 0, "replica": 5}]}
        assert validate_plan_dict(payload) == []
        errors = validate_plan_dict(payload, num_replicas=4)
        assert any("out of range" in e for e in errors)

    def test_rejects_bool_and_nonfinite_numbers(self):
        payload = {"events": [
            {"kind": "crash", "time": True, "replica": 0},
            {"kind": "slowdown", "time": 0, "replica": 0,
             "duration": float("inf")},
        ]}
        errors = validate_plan_dict(payload)
        assert len(errors) >= 2

    def test_rejects_unknown_keys(self):
        payload = {"events": [
            {"kind": "crash", "time": 0, "replica": 0, "blast": 9}
        ], "comment": "hi"}
        errors = validate_plan_dict(payload)
        assert any("unknown top-level" in e for e in errors)
        assert any("unknown keys" in e for e in errors)

    def test_zero_duration_slowdown_rejected(self):
        payload = {"events": [
            {"kind": "slowdown", "time": 0, "replica": 0, "duration": 0}
        ]}
        assert any("duration" in e for e in validate_plan_dict(payload))


class TestPoissonGenerator:
    def test_deterministic_given_stream(self):
        def draw():
            rng = np.random.default_rng(17)
            return FaultPlan.poisson(
                num_replicas=4, duration=600.0, mtbf=120.0, mttr=20.0,
                rng=rng,
            )

        assert draw() == draw()
        assert len(draw()) > 0

    def test_spare_replica_never_faults(self):
        rng = np.random.default_rng(3)
        plan = FaultPlan.poisson(
            num_replicas=3, duration=2000.0, mtbf=100.0, mttr=10.0,
            rng=rng,
        )
        assert 0 not in plan.replicas_touched()

    def test_slowdowns_generated_when_asked(self):
        rng = np.random.default_rng(5)
        plan = FaultPlan.poisson(
            num_replicas=2, duration=2000.0, mtbf=500.0, mttr=10.0,
            rng=rng, slowdown_mtbf=200.0,
        )
        kinds = {e.kind for e in plan.events}
        assert "slowdown" in kinds

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FaultPlan.poisson(0, 10.0, 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            FaultPlan.poisson(2, 10.0, -1.0, 1.0, rng)


class TestDefaultPlan:
    def test_install_and_restore(self):
        plan = FaultPlan(events=(ReplicaCrash(time=1.0, replica_id=0),))
        previous = set_default_fault_plan(plan)
        try:
            assert get_default_fault_plan() is plan
        finally:
            set_default_fault_plan(previous)
        assert get_default_fault_plan() is previous


class TestRetryPolicy:
    def test_backoff_caps(self):
        policy = RetryPolicy(max_attempts=5, base_backoff=1.0,
                             backoff_factor=2.0, max_backoff=3.0)
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 3.0  # capped
        assert policy.backoff(10) == 3.0

    def test_zero_attempts_no_wait(self):
        assert RetryPolicy().backoff(0) == 0.0

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=2.0, max_backoff=1.0)


class TestResilienceConfig:
    def test_degradation_levels(self):
        config = ResilienceConfig(shed_free_below=0.75,
                                  shed_batch_below=0.25)
        assert config.degradation_level(1.0) == 0
        assert config.degradation_level(0.75) == 0  # threshold is strict
        assert config.degradation_level(0.5) == 1
        assert config.degradation_level(0.2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(abandonment_factor=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(shed_free_below=1.5)
        with pytest.raises(ValueError):
            ResilienceConfig(shed_free_below=0.2, shed_batch_below=0.5)

    def test_none_disables_abandonment(self):
        assert ResilienceConfig(abandonment_factor=None).abandonment_factor \
            is None


class _RecordingTarget:
    def __init__(self):
        self.calls = []

    def on_replica_crash(self, replica_id):
        self.calls.append(("crash", replica_id))

    def on_replica_recover(self, replica_id):
        self.calls.append(("recover", replica_id))

    def on_replica_slowdown(self, replica_id, factor):
        self.calls.append(("slowdown", replica_id, factor))


class TestFaultInjector:
    def test_replays_plan_in_order(self):
        sim = Simulator()
        target = _RecordingTarget()
        plan = FaultPlan(events=(
            ReplicaCrash(time=1.0, replica_id=0, recover_after=2.0),
            ReplicaSlowdownFault(time=2.0, replica_id=1, duration=1.5,
                                 factor=4.0),
        ))
        armed = FaultInjector(sim, target, plan).arm()
        assert armed == 4  # crash+recover, slowdown start+end
        sim.run()
        assert target.calls == [
            ("crash", 0),
            ("slowdown", 1, 4.0),
            ("recover", 0),
            ("slowdown", 1, 1.0),
        ]

    def test_empty_plan_schedules_nothing(self):
        sim = Simulator()
        assert FaultInjector(sim, _RecordingTarget(), FaultPlan()).arm() == 0
        assert sim.pending_events == 0

    def test_arm_is_idempotent(self):
        sim = Simulator()
        plan = FaultPlan(events=(ReplicaCrash(time=1.0, replica_id=0),))
        injector = FaultInjector(sim, _RecordingTarget(), plan)
        assert injector.arm() == 1
        assert injector.arm() == 0
        assert sim.pending_events == 1

    def test_crash_without_recovery_schedules_one_event(self):
        sim = Simulator()
        plan = FaultPlan(events=(ReplicaCrash(time=1.0, replica_id=0),))
        assert FaultInjector(sim, _RecordingTarget(), plan).arm() == 1

    def test_faults_fire_before_same_time_work(self):
        sim = Simulator()
        order = []

        class Target:
            def on_replica_crash(self, replica_id):
                order.append("crash")

            def on_replica_recover(self, replica_id):
                order.append("recover")

            def on_replica_slowdown(self, replica_id, factor):
                order.append("slowdown")

        # Work is scheduled *before* the fault is armed, at the same
        # timestamp; FAULT_PRIORITY (< 0) still makes the crash win.
        sim.schedule(1.0, lambda: order.append("work"))
        plan = FaultPlan(events=(ReplicaCrash(time=1.0, replica_id=0),))
        FaultInjector(sim, Target(), plan).arm()
        assert FAULT_PRIORITY < 0
        sim.run()
        assert order == ["crash", "work"]

    def test_past_time_fault_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        plan = FaultPlan(events=(ReplicaCrash(time=1.0, replica_id=0),))
        injector = FaultInjector(sim, _RecordingTarget(), plan)
        with pytest.raises(ValueError, match="in the past"):
            injector.arm()
