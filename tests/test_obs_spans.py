"""Unit tests for request-scoped span trees (repro.obs.spans)."""

import json

import pytest

from repro.experiments.configs import get_execution_model
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.metrics.export import summary_to_dict
from repro.obs import (
    ListSink,
    TraceRecorder,
    TracingObserver,
    audit_events,
    build_span_trees,
    conservation_error,
    phase_durations,
    reconciliation_error,
    spans_to_chrome,
    spans_to_otlp,
    write_spans,
)
from repro.obs.audit import CONSERVATION_TOL
from repro.workload.datasets import AZURE_CODE
from tests.test_obs_audit import completed, iteration

#: The tentpole bound: span trees must reconcile with the auditor's
#: attribution to within 1e-9 (in practice they are bit-identical).
RECONCILIATION_TOL = 1e-9


def span_marker(kind, name, ts, request_id=1, replica_id=0, tier="Q1"):
    return {
        "kind": kind,
        "ts": ts,
        "name": name,
        "request_id": request_id,
        "replica_id": replica_id,
        "tier": tier,
    }


class TestTreeConstruction:
    def test_root_covers_request_lifetime(self):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(arrival=0.0, scheduled=1.0, first_token=1.5,
                      completion=2.0),
        ]
        [root] = build_span_trees(events)
        assert root.category == "request"
        assert root.start == 0.0
        assert root.end == 2.0
        assert root.tier == "Q1"
        assert root.attrs["violated"] is False

    def test_phase_children_tile_the_root(self):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(arrival=0.0, scheduled=1.0, first_token=1.5,
                      completion=2.0),
        ]
        [root] = build_span_trees(events)
        phases = [c for c in root.children if c.category == "phase"]
        assert [p.name for p in phases] == [
            "admission_queue", "prefill_compute", "decode",
        ]
        assert conservation_error(root) <= CONSERVATION_TOL
        # Consecutive phase segments share boundaries exactly.
        for prev, nxt in zip(phases, phases[1:]):
            assert prev.end == nxt.start

    def test_phase_durations_match_audit_exactly(self):
        events = [
            iteration(1.0, 0.2, prefill_ids=[1]),
            iteration(2.0, 0.2, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=2.2, completion=2.5),
        ]
        [audit] = audit_events(events).requests
        [root] = build_span_trees(events)
        durations = phase_durations(root)
        for name, seconds in audit.phases.items():
            if seconds:
                assert durations[name] == seconds  # bit-identical
        assert reconciliation_error(root, audit) == 0.0

    def test_chunk_children_under_prefill(self):
        events = [
            iteration(1.0, 0.2, prefill_ids=[1]),
            iteration(2.0, 0.2, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=2.2, completion=2.5),
        ]
        [root] = build_span_trees(events)
        chunks = [
            s for s in root.walk() if s.category == "chunk"
        ]
        assert len(chunks) == 2
        for chunk in chunks:
            assert chunk.attrs["replica_id"] == 0
            parents = [
                p for p in root.walk()
                if chunk in p.children
            ]
            assert [p.name for p in parents] == ["prefill_compute"]
            assert parents[0].start <= chunk.start <= chunk.end
            assert chunk.end <= parents[0].end

    def test_lifecycle_overlay_from_markers(self):
        events = [
            span_marker("span_start", "queue", 0.2),
            span_marker("span_start", "prefill", 1.0),
            span_marker("span_end", "queue", 1.0),
            iteration(1.0, 0.5, prefill_ids=[1]),
            span_marker("span_end", "prefill", 1.5),
            completed(arrival=0.0, scheduled=1.0, first_token=1.5,
                      completion=2.0),
        ]
        [root] = build_span_trees(events)
        lifecycle = {
            s.name: s for s in root.children if s.category == "lifecycle"
        }
        assert lifecycle["queue"].start == 0.2
        assert lifecycle["queue"].end == 1.0
        assert lifecycle["prefill"].duration == pytest.approx(0.5)
        # The overlay never affects the conservation invariant.
        assert conservation_error(root) <= CONSERVATION_TOL

    def test_unmatched_start_closes_at_completion(self):
        events = [
            span_marker("span_start", "decode", 1.5),
            completed(scheduled=1.0, first_token=1.5, completion=2.0),
        ]
        [root] = build_span_trees(events)
        [decode] = [
            s for s in root.children if s.category == "lifecycle"
        ]
        assert decode.end == 2.0

    def test_pre_v4_trace_has_no_lifecycle_children(self):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=1.5, completion=2.0),
        ]
        [root] = build_span_trees(events)
        assert not any(
            s.category == "lifecycle" for s in root.walk()
        )

    def test_trees_sorted_by_arrival(self):
        events = [
            completed(request_id=2, arrival=5.0, scheduled=6.0,
                      first_token=6.5, completion=7.0),
            completed(request_id=1, arrival=0.0, scheduled=1.0,
                      first_token=1.5, completion=2.0),
        ]
        trees = build_span_trees(events)
        assert [t.request_id for t in trees] == [1, 2]

    def test_walk_is_depth_first_self_first(self):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=1.5, completion=2.0),
        ]
        [root] = build_span_trees(events)
        order = [s.category for s in root.walk()]
        assert order[0] == "request"
        assert order.index("chunk") == order.index("phase") + 2


class TestExports:
    @pytest.fixture()
    def trees(self):
        events = [
            span_marker("span_start", "queue", 0.2),
            span_marker("span_end", "queue", 1.0),
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(arrival=0.0, scheduled=1.0, first_token=1.5,
                      completion=2.0),
        ]
        return build_span_trees(events)

    def test_otlp_shape_and_parent_links(self, trees):
        doc = spans_to_otlp(trees)
        [resource] = doc["resourceSpans"]
        [scope] = resource["scopeSpans"]
        spans = scope["spans"]
        assert len(spans) == sum(1 for t in trees for _ in t.walk())
        by_id = {s["spanId"]: s for s in spans}
        roots = [s for s in spans if not s["parentSpanId"]]
        assert len(roots) == len(trees)
        for span in spans:
            assert span["traceId"] == f"{1:032x}"
            if span["parentSpanId"]:
                parent = by_id[span["parentSpanId"]]
                assert int(parent["startTimeUnixNano"]) <= int(
                    span["startTimeUnixNano"]
                )

    def test_otlp_times_are_unix_nano_strings(self, trees):
        doc = spans_to_otlp(trees)
        span = doc["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        assert span["startTimeUnixNano"] == "0"
        assert span["endTimeUnixNano"] == str(int(2.0 * 1e9))

    def test_otlp_deterministic(self, trees):
        first = json.dumps(spans_to_otlp(trees), sort_keys=True)
        second = json.dumps(spans_to_otlp(trees), sort_keys=True)
        assert first == second

    def test_chrome_shape(self, trees):
        doc = spans_to_chrome(trees)
        events = doc["traceEvents"]
        phs = [e["ph"] for e in events]
        assert "M" in phs and "X" in phs
        assert phs.count("s") == phs.count("f")
        # Flow arrows chain consecutive phases.
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        for s, f in zip(starts, finishes):
            assert s["id"] == f["id"]
            assert s["ts"] <= f["ts"]

    def test_write_spans_roundtrip(self, trees, tmp_path):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=1.5, completion=2.0),
        ]
        otlp_path = tmp_path / "spans.json"
        chrome_path = tmp_path / "spans.chrome.json"
        assert write_spans(events, otlp_path) == 1
        assert write_spans(events, chrome_path, fmt="chrome") == 1
        assert "resourceSpans" in json.loads(otlp_path.read_text())
        assert "traceEvents" in json.loads(chrome_path.read_text())

    def test_write_spans_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            write_spans([], tmp_path / "x.json", fmt="protobuf")


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def smoke(self):
        """A fig05-sized overload run with live span emission."""
        execution_model = get_execution_model("llama3-8b")
        trace = build_trace(
            AZURE_CODE, qps=1.0, num_requests=80, seed=11
        ).scaled_arrivals(8.0)
        sink = ListSink()
        observer = TracingObserver(TraceRecorder([sink]))
        scheduler = make_scheduler("fcfs", execution_model)
        summary, _ = run_replica_trace(
            execution_model, scheduler, trace, observer=observer
        )
        return summary, trace, sink.events

    def test_span_markers_emitted(self, smoke):
        _, _, events = smoke
        starts = [e for e in events if e["kind"] == "span_start"]
        ends = [e for e in events if e["kind"] == "span_end"]
        assert {e["name"] for e in starts} == {
            "queue", "prefill", "decode",
        }
        assert len(starts) == len(ends)
        for event in starts + ends:
            assert event["tier"] in {"Q1", "Q2", "Q3"}

    def test_reconciliation_bound(self, smoke):
        _, _, events = smoke
        report = audit_events(events)
        audits = {a.request_id: a for a in report.requests}
        trees = build_span_trees(events)
        assert len(trees) == len(audits)
        worst = max(
            reconciliation_error(tree, audits[tree.request_id])
            for tree in trees
        )
        assert worst <= RECONCILIATION_TOL
        assert max(
            conservation_error(tree) for tree in trees
        ) <= CONSERVATION_TOL

    def test_every_tree_has_live_lifecycle_overlay(self, smoke):
        _, _, events = smoke
        trees = build_span_trees(events)
        for tree in trees:
            stages = {
                s.name for s in tree.children
                if s.category == "lifecycle"
            }
            assert {"queue", "prefill", "decode"} <= stages

    def test_spans_do_not_perturb_the_run(self, smoke):
        """Span emission is a pure read: the serialized RunSummary must
        be byte-identical to a run with the no-op observer."""
        summary, trace, _ = smoke
        execution_model = get_execution_model("llama3-8b")
        scheduler = make_scheduler("fcfs", execution_model)
        plain, _ = run_replica_trace(
            execution_model, scheduler, trace.fresh_copy()
        )
        spanned = json.dumps(summary_to_dict(summary), sort_keys=True)
        baseline = json.dumps(summary_to_dict(plain), sort_keys=True)
        assert spanned == baseline

    def test_exports_serialize(self, smoke, tmp_path):
        _, _, events = smoke
        count = write_spans(events, tmp_path / "spans.json")
        assert count == len(build_span_trees(events))
        assert count > 0
