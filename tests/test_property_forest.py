"""Property-based tests for the random-forest substrate."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.forest import DecisionTreeRegressor, RandomForestRegressor


@st.composite
def regression_data(draw):
    n = draw(st.integers(5, 60))
    n_features = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    x = rng.uniform(-10, 10, size=(n, n_features))
    y = rng.uniform(-5, 5, size=n)
    return x, y


@given(data=regression_data())
@settings(max_examples=40, deadline=None)
def test_tree_predictions_within_target_range(data):
    """Tree leaves are means of training targets, so predictions can
    never escape the training range."""
    x, y = data
    tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
    preds = tree.predict(x)
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9


@given(data=regression_data())
@settings(max_examples=40, deadline=None)
def test_deep_tree_interpolates_training_points(data):
    """With unlimited depth and leaf size 1, distinct inputs are fit
    exactly (modulo duplicated feature rows)."""
    x, y = data
    # De-duplicate rows so exact fitting is achievable.
    _, idx = np.unique(x, axis=0, return_index=True)
    x, y = x[idx], y[idx]
    tree = DecisionTreeRegressor(
        max_depth=64, min_samples_leaf=1, min_samples_split=2
    ).fit(x, y)
    assert np.allclose(tree.predict(x), y, atol=1e-9)


@given(data=regression_data(), quantile=st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_forest_quantile_bounded_by_votes(data, quantile):
    x, y = data
    forest = RandomForestRegressor(n_trees=5, max_depth=4, seed=0).fit(x, y)
    point = x[0]
    votes = [t.predict_one(point) for t in forest._trees]
    pred = forest.predict_one(point, quantile=quantile)
    assert min(votes) - 1e-9 <= pred <= max(votes) + 1e-9


@given(data=regression_data())
@settings(max_examples=30, deadline=None)
def test_forest_mean_is_vote_average(data):
    x, y = data
    forest = RandomForestRegressor(n_trees=7, max_depth=4, seed=1).fit(x, y)
    point = x[-1]
    votes = [t.predict_one(point) for t in forest._trees]
    assert forest.predict_one(point) == sum(votes) / len(votes)
