"""Unit tests for per-request latency attribution (repro.obs.audit)."""

import json

import pytest

from repro.experiments.configs import Scale, get_execution_model
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.metrics.export import summary_to_dict
from repro.obs.audit import (
    CONSERVATION_TOL,
    PHASES,
    audit_events,
    audit_requests,
)
from repro.workload.datasets import AZURE_CODE


def completed(
    request_id=1,
    tier="Q1",
    arrival=0.0,
    scheduled=1.0,
    first_token=2.0,
    completion=3.0,
    violated=False,
    relegated=False,
    qos_class="interactive",
):
    return {
        "kind": "request_completed",
        "ts": completion,
        "replica_id": 0,
        "request_id": request_id,
        "tier": tier,
        "arrival_time": arrival,
        "scheduled_first_time": scheduled,
        "first_token_time": first_token,
        "completion_time": completion,
        "relegated": relegated,
        "violated": violated,
        "evictions": 0,
        "qos_class": qos_class,
    }


def iteration(ts, dur, prefill_ids=()):
    return {
        "kind": "iteration_scheduled",
        "ts": ts,
        "dur": dur,
        "replica_id": 0,
        "iteration": 0,
        "prefill_request_ids": list(prefill_ids),
    }


class TestDecomposition:
    def test_simple_tiling(self):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(arrival=0.0, scheduled=1.0, first_token=1.5,
                      completion=2.0),
        ]
        report = audit_events(events)
        [audit] = report.requests
        assert audit.phases["admission_queue"] == pytest.approx(1.0)
        assert audit.phases["prefill_compute"] == pytest.approx(0.5)
        assert audit.phases["decode"] == pytest.approx(0.5)
        assert audit.conservation_error <= CONSERVATION_TOL
        assert audit.dominant_cause is None  # not violated

    def test_chunk_stall_between_spans(self):
        events = [
            iteration(1.0, 0.2, prefill_ids=[1]),
            iteration(2.0, 0.2, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=2.2, completion=2.5),
        ]
        report = audit_events(events)
        [audit] = report.requests
        assert audit.phases["chunk_stall"] == pytest.approx(0.8)
        assert audit.phases["prefill_compute"] == pytest.approx(0.4)
        assert audit.conservation_error <= CONSERVATION_TOL

    def test_preemption_reclassifies_gap(self):
        events = [
            iteration(1.0, 0.2, prefill_ids=[1]),
            {"kind": "preempted", "ts": 1.5, "request_id": 1,
             "replica_id": 0, "reason": "stall", "prefill_done": 100},
            iteration(2.0, 0.2, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=2.2, completion=2.5),
        ]
        report = audit_events(events)
        [audit] = report.requests
        assert audit.phases["preempt_stall"] == pytest.approx(0.8)
        assert audit.phases["chunk_stall"] == 0.0

    def test_retry_takes_precedence_over_preemption(self):
        events = [
            iteration(1.0, 0.2, prefill_ids=[1]),
            {"kind": "preempted", "ts": 1.5, "request_id": 1},
            {"kind": "request_retried", "ts": 1.6, "request_id": 1},
            iteration(2.0, 0.2, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=2.2, completion=2.5),
        ]
        report = audit_events(events)
        [audit] = report.requests
        assert audit.phases["retry_stall"] == pytest.approx(0.8)
        assert audit.phases["preempt_stall"] == 0.0

    def test_relegation_splits_admission_wait(self):
        events = [
            {"kind": "relegated", "ts": 2.0, "request_id": 1},
            iteration(5.0, 0.5, prefill_ids=[1]),
            completed(arrival=0.0, scheduled=5.0, first_token=5.5,
                      completion=6.0, relegated=True),
        ]
        report = audit_events(events)
        [audit] = report.requests
        assert audit.phases["admission_queue"] == pytest.approx(2.0)
        assert audit.phases["relegation_stall"] == pytest.approx(3.0)
        assert audit.phases["prefill_compute"] == pytest.approx(0.5)
        assert audit.conservation_error <= CONSERVATION_TOL

    def test_relegation_served_restores_chunk_accounting(self):
        # After relegation_served, later gaps are ordinary chunk waits.
        events = [
            {"kind": "relegated", "ts": 0.5, "request_id": 1},
            {"kind": "relegation_served", "ts": 1.0, "request_id": 1,
             "replica_id": 0, "tier": "Q3", "tokens": 128, "waited": 0.5},
            iteration(1.0, 0.2, prefill_ids=[1]),
            iteration(2.0, 0.2, prefill_ids=[1]),
            completed(arrival=0.0, scheduled=1.0, first_token=2.2,
                      completion=2.5, relegated=True, tier="Q3",
                      qos_class="non-interactive"),
        ]
        report = audit_events(events)
        [audit] = report.requests
        assert audit.phases["chunk_stall"] == pytest.approx(0.8)
        assert audit.phases["relegation_stall"] == pytest.approx(0.5)

    def test_v1_trace_without_new_fields(self):
        """Events lacking qos_class / service spans still decompose."""
        event = completed(violated=True, qos_class="")
        del event["qos_class"]
        report = audit_events([event])
        [audit] = report.requests
        assert audit.conservation_error <= CONSERVATION_TOL
        # Q1 falls back to the Table 3 interactive convention.
        assert audit.dominant_cause is not None
        assert audit.dominant_cause != "decode"


class TestDominantCause:
    def test_interactive_never_blames_decode(self):
        # Huge decode, tiny queue — but TTFT-governed tiers must pick
        # a pre-first-token phase.
        report = audit_events([
            completed(arrival=0.0, scheduled=0.1, first_token=0.2,
                      completion=100.0, violated=True,
                      qos_class="interactive"),
        ])
        [audit] = report.requests
        assert audit.dominant_cause == "admission_queue"

    def test_non_interactive_can_blame_decode(self):
        report = audit_events([
            completed(arrival=0.0, scheduled=0.1, first_token=0.2,
                      completion=100.0, violated=True, tier="Q2",
                      qos_class="non-interactive"),
        ])
        [audit] = report.requests
        assert audit.dominant_cause == "decode"

    def test_exactly_one_cause_per_violated_request(self):
        events = [
            completed(request_id=i, violated=(i % 2 == 0))
            for i in range(10)
        ]
        report = audit_events(events)
        assert sum(report.dominant_causes().values()) == 5
        assert sum(report.violated.values()) == 5
        for audit in report.requests:
            assert (audit.dominant_cause is not None) == audit.violated
            if audit.dominant_cause is not None:
                assert audit.dominant_cause in PHASES


class TestReportAggregation:
    def test_phase_share_sums_to_one(self):
        events = [
            iteration(1.0, 0.5, prefill_ids=[1]),
            completed(scheduled=1.0, first_token=1.5, completion=2.0),
            completed(request_id=2, tier="Q2", completion=4.0),
        ]
        report = audit_events(events)
        share = report.phase_share()
        assert sum(share.values()) == pytest.approx(1.0)
        assert set(share) == set(PHASES)
        q2_share = report.phase_share(tier="Q2")
        assert sum(q2_share.values()) == pytest.approx(1.0)

    def test_empty_report(self):
        report = audit_events([])
        assert report.max_conservation_error() == 0.0
        assert report.dominant_causes() == {}
        assert report.phase_share() == {name: 0.0 for name in PHASES}
        assert report.to_dict()["num_requests"] == 0

    def test_to_dict_json_safe(self):
        report = audit_events([completed(violated=True)])
        payload = json.dumps(report.to_dict(), sort_keys=True)
        assert "admission_queue" in payload


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def smoke(self):
        execution_model = get_execution_model("llama3-8b")
        scale = Scale(label="audit-smoke", num_requests=80, seed=11)
        trace = build_trace(
            AZURE_CODE, qps=1.0, num_requests=scale.num_requests,
            seed=scale.seed,
        ).scaled_arrivals(8.0)
        scheduler = make_scheduler("fcfs", execution_model)
        summary, _ = run_replica_trace(
            execution_model, scheduler, trace, audit=True
        )
        return summary, trace

    def test_conservation_bound(self, smoke):
        summary, _ = smoke
        report = summary.attribution
        assert report is not None
        assert len(report.requests) > 0
        assert report.max_conservation_error() <= CONSERVATION_TOL

    def test_every_violation_has_one_cause(self, smoke):
        summary, _ = smoke
        report = summary.attribution
        assert sum(report.violated.values()) > 0, (
            "smoke run should overload fcfs"
        )
        assert sum(report.dominant_causes().values()) == sum(
            report.violated.values()
        )

    def test_determinism_pin_with_audit(self, smoke):
        """Auditing is a pure read: the serialized RunSummary must be
        byte-identical to a run without any observer attached."""
        summary, trace = smoke
        execution_model = get_execution_model("llama3-8b")
        scheduler = make_scheduler("fcfs", execution_model)
        plain, _ = run_replica_trace(
            execution_model, scheduler, trace.fresh_copy()
        )
        audited = json.dumps(summary_to_dict(summary), sort_keys=True)
        baseline = json.dumps(summary_to_dict(plain), sort_keys=True)
        assert audited == baseline

    def test_coarse_fallback_agrees_on_totals(self, smoke):
        _, trace = smoke
        report = audit_requests(list(trace))
        assert report.max_conservation_error() <= CONSERVATION_TOL
        assert sum(report.completed.values()) == sum(
            1 for r in trace if r.completion_time is not None
        )
