"""Unit tests for the Azure trace CSV loader."""

import pytest

from repro.workload.azure_csv import load_azure_trace, write_azure_csv
from repro.workload.tiers import TierAssigner, TierMix
from repro.workload.trace import TraceBuilder
from repro.workload.arrivals import PoissonArrivals
from repro.workload.datasets import AZURE_CONV


def write_csv(path, rows, header="TIMESTAMP,ContextTokens,GeneratedTokens"):
    path.write_text(header + "\n" + "\n".join(rows) + "\n")


class TestLoading:
    def test_numeric_timestamps(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["0.0,1000,50", "1.5,2000,10", "3.0,500,5"])
        trace = load_azure_trace(path)
        assert len(trace) == 3
        assert trace[0].arrival_time == 0.0
        assert trace[1].prompt_tokens == 2000
        assert trace[2].decode_tokens == 5

    def test_iso_timestamps_rebased(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, [
            "2024-01-01T00:00:00,100,5",
            "2024-01-01T00:00:10,200,5",
        ])
        trace = load_azure_trace(path)
        assert trace[0].arrival_time == 0.0
        assert trace[1].arrival_time == pytest.approx(10.0)

    def test_unsorted_rows_sorted(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["5.0,100,5", "1.0,200,5", "3.0,300,5"])
        trace = load_azure_trace(path)
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        assert trace[0].prompt_tokens == 200

    def test_alternate_headers(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["0,100,5"],
                  header="Timestamp,context_tokens,generated_tokens")
        assert len(load_azure_trace(path)) == 1

    def test_prompt_clipped_and_floored(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["0,999999,0", "1,0,5"])
        trace = load_azure_trace(path, max_prompt_tokens=8192)
        assert trace[0].prompt_tokens == 8192
        assert trace[0].decode_tokens == 1  # floored
        assert trace[1].prompt_tokens == 1

    def test_target_qps_rescales(self, tmp_path):
        path = tmp_path / "t.csv"
        rows = [f"{i * 10.0},100,5" for i in range(11)]  # native 0.1 QPS
        write_csv(path, rows)
        trace = load_azure_trace(path, target_qps=2.0)
        # 10 gaps at 2 QPS -> 5 s span.
        assert trace.duration == pytest.approx(5.0)

    def test_max_requests(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, [f"{i},100,5" for i in range(50)])
        assert len(load_azure_trace(path, max_requests=7)) == 7

    def test_tier_assignment_default_thirds(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, [f"{i},100,5" for i in range(600)])
        trace = load_azure_trace(path, seed=3)
        names = {r.qos.name for r in trace}
        assert names == {"Q1", "Q2", "Q3"}

    def test_custom_assigner(self, tmp_path):
        from repro.core.qos import Q1_INTERACTIVE

        path = tmp_path / "t.csv"
        write_csv(path, [f"{i},100,5" for i in range(10)])
        assigner = TierAssigner(
            TierMix(tiers=(Q1_INTERACTIVE,), weights=(1.0,),
                    app_names=("chat",))
        )
        trace = load_azure_trace(path, tier_assigner=assigner)
        assert all(r.qos.name == "Q1" for r in trace)


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("TIMESTAMP,ContextTokens,GeneratedTokens\n")
        with pytest.raises(ValueError, match="no rows"):
            load_azure_trace(path)

    def test_missing_column(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["0,100"], header="TIMESTAMP,ContextTokens")
        with pytest.raises(ValueError, match="generated"):
            load_azure_trace(path)

    def test_bad_timestamp(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["yesterday,100,5"])
        with pytest.raises(ValueError, match="unparseable"):
            load_azure_trace(path)

    def test_bad_target_qps(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["0,100,5", "1,100,5"])
        with pytest.raises(ValueError):
            load_azure_trace(path, target_qps=0.0)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        original = TraceBuilder(
            AZURE_CONV, arrivals=PoissonArrivals(2.0),
            tier_assigner=TierAssigner(), seed=4,
        ).build(40)
        path = tmp_path / "t.csv"
        write_azure_csv(original, path)
        loaded = load_azure_trace(path, seed=4)
        assert len(loaded) == 40
        for a, b in zip(original, loaded):
            assert a.prompt_tokens == b.prompt_tokens
            assert a.decode_tokens == b.decode_tokens
            assert b.arrival_time == pytest.approx(
                a.arrival_time - original[0].arrival_time, abs=1e-4
            )

    def test_loaded_trace_simulates(self, tmp_path, execution_model):
        from repro.experiments.runner import make_scheduler, run_replica_trace

        original = TraceBuilder(
            AZURE_CONV, arrivals=PoissonArrivals(2.0),
            tier_assigner=TierAssigner(), seed=4,
        ).build(30)
        path = tmp_path / "t.csv"
        write_azure_csv(original, path)
        trace = load_azure_trace(path)
        summary, _ = run_replica_trace(
            execution_model, make_scheduler("qoserve-oracle",
                                            execution_model), trace
        )
        assert summary.finished == 30
