"""Unit tests for ASCII chart rendering."""

import pytest

from repro.experiments.plotting import ascii_line_chart, plot_result
from repro.experiments.result import ExperimentResult


def sample_result():
    result = ExperimentResult("fig-x", "demo")
    for scheme in ("A-scheme", "B-scheme"):
        for qps in (1.0, 2.0, 3.0):
            result.rows.append(
                {
                    "scheme": scheme,
                    "qps": qps,
                    "viol": qps * (10.0 if scheme == "A-scheme" else 1.0),
                }
            )
    return result


class TestAsciiChart:
    def test_renders_all_series(self):
        chart = ascii_line_chart(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            title="t",
        )
        assert "legend: A=up  B=down" in chart
        assert "A" in chart and "B" in chart

    def test_extremes_on_edges(self):
        chart = ascii_line_chart(
            {"s": [(0, 0), (10, 100)]}, width=20, height=5
        )
        lines = chart.splitlines()
        assert lines[0].strip().startswith("100")
        # Max point lands in the top row, min in the bottom row.
        assert "A" in lines[0]
        assert "A" in lines[4]

    def test_log_scale(self):
        chart = ascii_line_chart(
            {"s": [(0, 1), (1, 10), (2, 100)]}, height=9, log_y=True
        )
        assert "(log-scale y)" in chart
        # On a log axis the three decades are evenly spaced: the mid
        # point sits in the middle row.
        lines = chart.splitlines()
        rows_with_marker = [
            i for i, line in enumerate(lines) if "A" in line
            and "|" in line
        ]
        assert len(rows_with_marker) == 3
        gaps = [b - a for a, b in zip(rows_with_marker,
                                      rows_with_marker[1:])]
        assert gaps[0] == gaps[1]

    def test_empty_data(self):
        assert "(no finite data)" in ascii_line_chart({}, title="x")

    def test_non_finite_filtered(self):
        chart = ascii_line_chart(
            {"s": [(0, 1), (1, float("inf")), (2, 3)]}
        )
        assert "3.0" in chart

    def test_constant_series(self):
        chart = ascii_line_chart({"s": [(0, 5), (1, 5)]})
        assert "5.0" in chart


class TestPlotResult:
    def test_auto_axes(self):
        chart = plot_result(sample_result(), "viol")
        assert "viol vs qps" in chart
        assert "A-scheme" in chart and "B-scheme" in chart

    def test_explicit_axes(self):
        chart = plot_result(
            sample_result(), "viol", x="qps", group_by="scheme"
        )
        assert "legend:" in chart

    def test_missing_column(self):
        with pytest.raises(KeyError):
            plot_result(sample_result(), "nope")

    def test_missing_x(self):
        with pytest.raises(KeyError):
            plot_result(sample_result(), "viol", x="nope")

    def test_no_rows(self):
        empty = ExperimentResult("e", "t")
        assert "no rows" in plot_result(empty, "anything")

    def test_no_group_column(self):
        result = ExperimentResult("e", "t")
        result.rows = [{"x": 1.0, "y": 2.0}, {"x": 2.0, "y": 3.0}]
        chart = plot_result(result, "y")
        assert "A=all" in chart
