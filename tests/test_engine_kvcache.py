"""Unit tests for the paged KV-cache manager."""

import pytest

from repro.engine.kvcache import KVCacheManager


class TestAllocation:
    def test_initial_state(self):
        kv = KVCacheManager(capacity_tokens=1600, block_size=16)
        assert kv.capacity_blocks == 100
        assert kv.free_blocks == 100
        assert kv.used_blocks == 0
        assert kv.utilization == 0.0

    def test_grow_rounds_up_to_blocks(self):
        kv = KVCacheManager(capacity_tokens=1600, block_size=16)
        kv.grow(1, 17)  # needs 2 blocks
        assert kv.used_blocks == 2
        assert kv.holding(1) == 17
        assert kv.used_tokens == 17

    def test_incremental_growth_reuses_partial_block(self):
        kv = KVCacheManager(capacity_tokens=1600, block_size=16)
        kv.grow(1, 10)
        assert kv.used_blocks == 1
        kv.grow(1, 6)  # fills the block exactly
        assert kv.used_blocks == 1
        kv.grow(1, 1)
        assert kv.used_blocks == 2

    def test_blocks_needed(self):
        kv = KVCacheManager(capacity_tokens=1600, block_size=16)
        assert kv.blocks_needed(1, 16) == 1
        kv.grow(1, 8)
        assert kv.blocks_needed(1, 8) == 0
        assert kv.blocks_needed(1, 9) == 1

    def test_can_grow(self):
        kv = KVCacheManager(capacity_tokens=32, block_size=16)
        assert kv.can_grow(1, 32)
        assert not kv.can_grow(1, 33)

    def test_grow_beyond_capacity_raises(self):
        kv = KVCacheManager(capacity_tokens=32, block_size=16)
        kv.grow(1, 32)
        with pytest.raises(MemoryError):
            kv.grow(2, 1)

    def test_grow_negative_raises(self):
        kv = KVCacheManager(capacity_tokens=32)
        with pytest.raises(ValueError):
            kv.grow(1, -1)

    def test_zero_growth_is_noop(self):
        kv = KVCacheManager(capacity_tokens=32, block_size=16)
        kv.grow(1, 0)
        assert kv.used_blocks == 0


class TestRelease:
    def test_release_frees_blocks(self):
        kv = KVCacheManager(capacity_tokens=1600, block_size=16)
        kv.grow(1, 100)
        freed = kv.release(1)
        assert freed == 7
        assert kv.used_blocks == 0
        assert kv.holding(1) == 0

    def test_release_unknown_is_noop(self):
        kv = KVCacheManager(capacity_tokens=32)
        assert kv.release(42) == 0

    def test_release_makes_room(self):
        kv = KVCacheManager(capacity_tokens=32, block_size=16)
        kv.grow(1, 32)
        kv.release(1)
        kv.grow(2, 32)
        assert kv.holding(2) == 32

    def test_multiple_holders_accounted(self):
        kv = KVCacheManager(capacity_tokens=160, block_size=16)
        kv.grow(1, 20)
        kv.grow(2, 30)
        assert kv.used_tokens == 50
        assert kv.used_blocks == 2 + 2
        kv.release(1)
        assert kv.used_tokens == 30


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            KVCacheManager(capacity_tokens=0)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            KVCacheManager(capacity_tokens=100, block_size=0)

    def test_rejects_capacity_below_one_block(self):
        with pytest.raises(ValueError):
            KVCacheManager(capacity_tokens=10, block_size=16)
