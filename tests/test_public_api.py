"""The public API surface: everything advertised must resolve."""

import importlib

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        for subpackage in (
            "simcore", "perfmodel", "forest", "core", "workload",
            "engine", "schedulers", "cluster", "metrics", "experiments",
            "cli",
        ):
            importlib.import_module(f"repro.{subpackage}")

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart must actually run."""
        from repro import (
            A100_80GB,
            AZURE_CODE,
            ExecutionModel,
            LLAMA3_8B,
            PoissonArrivals,
            QoServeScheduler,
            ReplicaEngine,
            Simulator,
            TraceBuilder,
            summarize_run,
        )

        em = ExecutionModel(LLAMA3_8B, A100_80GB)
        trace = TraceBuilder(AZURE_CODE, PoissonArrivals(3.0)).build(30)
        sim = Simulator()
        engine = ReplicaEngine(sim, em, QoServeScheduler(em))
        for request in trace:
            engine.submit(request)
        sim.run()
        summary = summarize_run(engine.submitted, now=sim.now)
        assert summary.finished == 30

    def test_scheduler_names_unique(self):
        from repro import (
            EDFScheduler,
            FCFSScheduler,
            SJFScheduler,
            SRPFScheduler,
        )
        names = {
            cls.name
            for cls in (
                FCFSScheduler, SJFScheduler, SRPFScheduler, EDFScheduler
            )
        }
        assert len(names) == 4
