"""Unit tests for the SLO-forensics dashboard and its CLI command."""

import json

import pytest

from repro.cli import main
from repro.experiments.configs import Scale, get_execution_model
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.obs import (
    JSONLSink,
    TraceRecorder,
    TracingObserver,
    build_dashboard_data,
    read_jsonl_trace,
    render_html,
    render_terminal,
)
from repro.workload.datasets import AZURE_CODE


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A real recorded trace from one overloaded smoke run."""
    path = tmp_path_factory.mktemp("dash") / "run.jsonl"
    execution_model = get_execution_model("llama3-8b")
    scale = Scale(label="dash-smoke", num_requests=60, seed=3)
    trace = build_trace(
        AZURE_CODE, qps=1.0, num_requests=scale.num_requests,
        seed=scale.seed,
    ).scaled_arrivals(8.0)
    with JSONLSink(path) as sink:
        observer = TracingObserver(TraceRecorder([sink]))
        scheduler = make_scheduler("fcfs", execution_model)
        run_replica_trace(
            execution_model, scheduler, trace, observer=observer
        )
    return path


@pytest.fixture(scope="module")
def events(trace_file):
    return read_jsonl_trace(trace_file)


class TestBuildData:
    def test_structure(self, events):
        data = build_dashboard_data(events)
        assert data["num_events"] == len(events)
        assert data["completed"] > 0
        assert 0.0 <= data["goodput_pct"] <= 100.0
        assert data["tiers"]
        for tier_stats in data["tiers"]:
            assert set(tier_stats) >= {
                "tier", "completed", "violated", "goodput_pct",
                "ttft", "ttlt",
            }
        assert data["attribution"].max_conservation_error() <= 1e-9

    def test_empty_events(self):
        data = build_dashboard_data([])
        assert data["num_events"] == 0
        assert data["completed"] == 0
        assert render_terminal(data)  # renders without raising

    def test_burn_window_parameter(self, events):
        narrow = build_dashboard_data(events, burn_window=1.0)
        wide = build_dashboard_data(events, burn_window=1e6)
        assert len(narrow["burn"].series()) >= len(wide["burn"].series())


class TestRendering:
    def test_terminal_report_mentions_tiers(self, events):
        data = build_dashboard_data(events)
        text = render_terminal(data)
        assert "goodput" in text.lower()
        for row in data["tiers"]:
            assert row["tier"] in text

    def test_html_is_single_file(self, events):
        html = render_html(build_dashboard_data(events), title="t")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        # No external fetches: the only URLs allowed are XML namespace
        # identifiers inside the inline SVGs.
        assert "<script src" not in html
        assert "<link" not in html
        assert 'src="http' not in html

    def test_html_contains_attribution_phases(self, events):
        html = render_html(build_dashboard_data(events), title="t")
        assert "admission_queue" in html or "admission" in html


class TestCli:
    def test_dashboard_command(self, trace_file, tmp_path, capsys):
        out = tmp_path / "report.html"
        code = main(["dashboard", str(trace_file), "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "goodput" in stdout.lower()
        assert out.exists()
        assert "<svg" in out.read_text()

    def test_missing_trace(self, tmp_path, capsys):
        code = main(["dashboard", str(tmp_path / "nope.jsonl")])
        assert code != 0

    def test_schema_invalid_trace_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"kind": "request_completed", "ts": 0.0}) + "\n"
        )
        assert main(["dashboard", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err.lower()

    def test_no_validate_skips_schema_check(self, tmp_path):
        # Same malformed event: --no-validate must not exit with the
        # schema error (the audit simply cannot use the event).
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"kind": "mystery", "ts": 0.0}) + "\n")
        assert main(["dashboard", str(bad), "--no-validate"]) == 0

    def test_bad_window_rejected(self, trace_file, capsys):
        assert main(
            ["dashboard", str(trace_file), "--window", "0"]
        ) == 2


class TestIncidents:
    """``repro dashboard --incidents``: flight-recorder cross-links."""

    @pytest.fixture(scope="class")
    def incidents_file(self, trace_file, events, tmp_path_factory):
        from repro.obs import record_incidents

        path = tmp_path_factory.mktemp("incidents") / "inc.jsonl"
        written = record_incidents(events, path)
        assert written > 0, "overloaded fcfs run should trip incidents"
        return path

    def test_data_carries_incidents(self, events, incidents_file):
        from repro.obs import read_incidents

        incidents = read_incidents(incidents_file)
        data = build_dashboard_data(events, incidents=incidents)
        assert data["incidents"] == incidents
        # Without the parameter the key is present but empty, so the
        # renderers never need to guard for its absence.
        assert build_dashboard_data(events)["incidents"] == []

    def test_terminal_lists_incidents(self, events, incidents_file):
        from repro.obs import read_incidents

        data = build_dashboard_data(
            events, incidents=read_incidents(incidents_file)
        )
        text = render_terminal(data)
        assert "flight-recorder incidents" in text
        assert "cause:" in text

    def test_html_cross_links_incidents(self, events, incidents_file):
        from repro.obs import read_incidents

        incidents = read_incidents(incidents_file)
        html = render_html(
            build_dashboard_data(events, incidents=incidents),
            title="t",
        )
        assert "Flight-recorder incidents" in html
        assert "dominant cause" in html

    def test_cli_incidents_flag(self, trace_file, incidents_file,
                                tmp_path, capsys):
        out = tmp_path / "report.html"
        code = main([
            "dashboard", str(trace_file),
            "--incidents", str(incidents_file),
            "--out", str(out),
        ])
        assert code == 0
        assert "flight-recorder incidents" in capsys.readouterr().out
        assert "Flight-recorder incidents" in out.read_text()

    def test_cli_missing_incidents_file(self, trace_file, tmp_path):
        assert main([
            "dashboard", str(trace_file),
            "--incidents", str(tmp_path / "nope.jsonl"),
        ]) == 1
