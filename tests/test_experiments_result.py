"""Unit tests for experiment result tables."""

import pytest

from repro.experiments.result import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult(experiment="fig-x", title="demo")
    r.rows = [
        {"scheme": "A", "qps": 2.0, "viol": 0.0},
        {"scheme": "B", "qps": 2.0, "viol": 12.5},
        {"scheme": "A", "qps": 4.0, "viol": 3.0},
    ]
    return r


class TestExperimentResult:
    def test_columns_preserve_order(self, result):
        assert result.columns() == ["scheme", "qps", "viol"]

    def test_columns_union_across_rows(self):
        r = ExperimentResult("x", "t")
        r.rows = [{"a": 1}, {"b": 2}]
        assert r.columns() == ["a", "b"]

    def test_column_extraction(self, result):
        assert result.column("scheme") == ["A", "B", "A"]
        assert result.column("missing") == [None, None, None]

    def test_row_by(self, result):
        row = result.row_by(scheme="A", qps=4.0)
        assert row["viol"] == 3.0

    def test_row_by_missing_raises(self, result):
        with pytest.raises(KeyError):
            result.row_by(scheme="Z")

    def test_render_contains_data(self, result):
        text = result.render()
        assert "fig-x" in text
        assert "scheme" in text
        assert "12.5" in text

    def test_render_notes(self):
        r = ExperimentResult("x", "t", notes=["caveat here"])
        assert "note: caveat here" in r.render()

    def test_render_formats_nan_and_inf(self):
        r = ExperimentResult("x", "t")
        r.rows = [{"v": float("nan"), "w": float("inf")}]
        text = r.render()
        assert "-" in text
        assert "inf" in text

    def test_render_empty(self):
        assert "x" in ExperimentResult("x", "t").render()
