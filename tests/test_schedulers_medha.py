"""Unit tests for the Medha adaptive-chunking re-implementation."""

import pytest

from repro.engine.interface import EngineView
from repro.engine.kvcache import KVCacheManager
from repro.schedulers import MedhaScheduler
from tests.conftest import Q1, make_request


def make_view(execution_model, decode_requests=()):
    return EngineView(
        now=0.0,
        decode_requests=list(decode_requests),
        kv_cache=KVCacheManager(capacity_tokens=400_000),
        execution_model=execution_model,
        max_decode_slots=256,
        inflight_prefill_ids=frozenset(),
    )


class TestMedhaChunking:
    def test_chunks_shrink_with_context(self, execution_model):
        """Medha's signature: later chunks of a long prefill shrink to
        keep iteration latency at the fixed TBT target."""
        scheduler = MedhaScheduler(execution_model, tbt_target=0.050)
        r = make_request(request_id=1, prompt_tokens=60_000, qos=Q1)
        scheduler.enqueue(r, 0.0)
        view = make_view(execution_model)
        early = scheduler.plan_prefill(view)[0].tokens
        r.prefill_done = 40_000
        late = scheduler.plan_prefill(view)[0].tokens
        assert late < early

    def test_ignores_decode_slack(self, execution_model):
        """Unlike QoServe, accumulated slack does not grow the chunk."""
        scheduler = MedhaScheduler(execution_model, tbt_target=0.050)
        slack_rich = make_request(request_id=2, prompt_tokens=100,
                                  decode_tokens=50, qos=Q1)
        slack_rich.prefill_done = 100
        slack_rich.decoded = 1  # tons of slack at t=0
        r = make_request(request_id=1, prompt_tokens=10_000, qos=Q1)
        scheduler.enqueue(r, 0.0)
        with_slack = scheduler.plan_prefill(
            make_view(execution_model, [slack_rich])
        )[0].tokens
        without = scheduler.plan_prefill(make_view(execution_model))
        # The slack-rich decode does not enlarge Medha's chunk beyond
        # the no-decode case (decode tokens only add cost).
        assert with_slack <= without[0].tokens

    def test_fcfs_ordering(self, execution_model):
        scheduler = MedhaScheduler(execution_model)
        late = make_request(request_id=1, arrival_time=2.0,
                            prompt_tokens=500)
        early = make_request(request_id=2, arrival_time=1.0,
                             prompt_tokens=500)
        scheduler.enqueue(late, 2.0)
        scheduler.enqueue(early, 2.0)
        assignments = scheduler.plan_prefill(make_view(execution_model))
        assert assignments[0].request is early

    def test_chunk_history_recorded(self, execution_model):
        scheduler = MedhaScheduler(execution_model)
        r = make_request(request_id=1, prompt_tokens=5000)
        scheduler.enqueue(r, 0.0)
        scheduler.plan_prefill(make_view(execution_model))
        assert len(scheduler.chunk_history) == 1
        assert scheduler.chunk_history[0] > 0

    def test_higher_target_bigger_chunks(self, execution_model):
        r = make_request(request_id=1, prompt_tokens=60_000)
        strict = MedhaScheduler(execution_model, tbt_target=0.050)
        relaxed = MedhaScheduler(execution_model, tbt_target=0.100)
        strict.enqueue(r, 0.0)
        relaxed.enqueue(r, 0.0)
        a = strict.plan_prefill(make_view(execution_model))[0].tokens
        b = relaxed.plan_prefill(make_view(execution_model))[0].tokens
        assert b > a

    def test_validation(self, execution_model):
        with pytest.raises(ValueError):
            MedhaScheduler(execution_model, tbt_target=0.0)

    def test_empty_queue(self, execution_model):
        scheduler = MedhaScheduler(execution_model)
        assert scheduler.plan_prefill(make_view(execution_model)) == []
