"""Unit tests for the simulation driver."""

import pytest

from repro.simcore import Simulator


class TestScheduling:
    def test_runs_events_in_order(self, simulator):
        log = []
        simulator.schedule(2.0, lambda: log.append("b"))
        simulator.schedule(1.0, lambda: log.append("a"))
        simulator.schedule(3.0, lambda: log.append("c"))
        simulator.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, simulator):
        seen = []
        simulator.schedule(5.0, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [5.0]
        assert simulator.now == 5.0

    def test_schedule_after(self, simulator):
        seen = []
        simulator.schedule(1.0, lambda: simulator.schedule_after(
            2.5, lambda: seen.append(simulator.now)))
        simulator.run()
        assert seen == [3.5]

    def test_schedule_in_past_raises(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule(0.5, lambda: None)

    def test_negative_delay_raises(self, simulator):
        with pytest.raises(ValueError):
            simulator.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run_are_processed(self, simulator):
        log = []

        def chain(n):
            log.append(n)
            if n < 4:
                simulator.schedule_after(1.0, lambda: chain(n + 1))

        simulator.schedule(0.0, lambda: chain(0))
        simulator.run()
        assert log == [0, 1, 2, 3, 4]
        assert simulator.now == 4.0


class TestRunLimits:
    def test_until_stops_before_later_events(self, simulator):
        log = []
        simulator.schedule(1.0, lambda: log.append(1))
        simulator.schedule(10.0, lambda: log.append(10))
        simulator.run(until=5.0)
        assert log == [1]
        assert simulator.now == 5.0
        # Remaining event still fires on a later run.
        simulator.run()
        assert log == [1, 10]

    def test_until_advances_clock_with_no_events(self, simulator):
        simulator.run(until=7.0)
        assert simulator.now == 7.0

    def test_max_events(self, simulator):
        log = []
        for i in range(5):
            simulator.schedule(float(i), lambda i=i: log.append(i))
        simulator.run(max_events=3)
        assert log == [0, 1, 2]

    def test_stop_inside_event(self, simulator):
        log = []

        def first():
            log.append(1)
            simulator.stop()

        simulator.schedule(1.0, first)
        simulator.schedule(2.0, lambda: log.append(2))
        simulator.run()
        assert log == [1]

    def test_events_processed_counter(self, simulator):
        for i in range(4):
            simulator.schedule(float(i), lambda: None)
        simulator.run()
        assert simulator.events_processed == 4

    def test_pending_events(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        assert simulator.pending_events == 2
        simulator.run()
        assert simulator.pending_events == 0


class TestOrderingEdgeCases:
    def test_same_timestamp_priority_ordering(self, simulator):
        log = []
        simulator.schedule(1.0, lambda: log.append("late"), priority=5)
        simulator.schedule(1.0, lambda: log.append("early"), priority=-1)
        simulator.schedule(1.0, lambda: log.append("mid"))
        simulator.run()
        assert log == ["early", "mid", "late"]

    def test_same_time_same_priority_is_fifo(self, simulator):
        log = []
        for i in range(6):
            simulator.schedule(2.0, lambda i=i: log.append(i))
        simulator.run()
        assert log == list(range(6))

    def test_priority_does_not_trump_time(self, simulator):
        log = []
        simulator.schedule(2.0, lambda: log.append("t2"), priority=-100)
        simulator.schedule(1.0, lambda: log.append("t1"), priority=100)
        simulator.run()
        assert log == ["t1", "t2"]

    def test_max_events_cutoff_then_resume(self, simulator):
        log = []
        for i in range(5):
            simulator.schedule(float(i), lambda i=i: log.append(i))
        simulator.run(max_events=2)
        assert log == [0, 1]
        assert simulator.now == 1.0
        assert simulator.pending_events == 3
        # A later run picks up exactly where the cutoff left off.
        simulator.run()
        assert log == [0, 1, 2, 3, 4]
        assert simulator.events_processed == 5

    def test_schedule_at_exactly_now_is_allowed(self, simulator):
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        fired = []
        simulator.schedule(2.0, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == [2.0]

    def test_schedule_in_past_during_run_raises(self, simulator):
        def try_rewind():
            simulator.schedule(1.0, lambda: None)

        simulator.schedule(2.0, try_rewind)
        with pytest.raises(ValueError, match="in the past"):
            simulator.run()

    def test_nan_time_raises(self, simulator):
        with pytest.raises(ValueError, match="NaN"):
            simulator.schedule(float("nan"), lambda: None)

    def test_cancelled_event_is_skipped(self, simulator):
        log = []
        handle = simulator.schedule(1.0, lambda: log.append("cancelled"))
        simulator.schedule(2.0, lambda: log.append("kept"))
        handle.cancel()
        simulator.run()
        assert log == ["kept"]
        assert simulator.events_processed == 1


class TestDeterminism:
    def test_same_schedule_same_order(self):
        def run_once():
            sim = Simulator()
            log = []
            for i in range(20):
                sim.schedule(float(i % 3), lambda i=i: log.append(i))
            sim.run()
            return log

        assert run_once() == run_once()
