"""Unit tests for the bagged random forest."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor


def make_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 4, size=(n, 2))
    y = x[:, 0] ** 2 + 3.0 * x[:, 1] + rng.normal(0, 0.1, n)
    return x, y


class TestForest:
    def test_fit_predict_reasonable(self):
        x, y = make_data()
        forest = RandomForestRegressor(n_trees=10, seed=1).fit(x, y)
        preds = forest.predict(x)
        rel_err = np.mean(np.abs(preds - y) / np.maximum(np.abs(y), 1e-9))
        assert rel_err < 0.15

    def test_deterministic_given_seed(self):
        x, y = make_data()
        a = RandomForestRegressor(n_trees=5, seed=7).fit(x, y).predict(x[:5])
        b = RandomForestRegressor(n_trees=5, seed=7).fit(x, y).predict(x[:5])
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        x, y = make_data()
        a = RandomForestRegressor(n_trees=5, seed=1).fit(x, y).predict(x[:5])
        b = RandomForestRegressor(n_trees=5, seed=2).fit(x, y).predict(x[:5])
        assert not np.allclose(a, b)

    def test_quantile_ordering(self):
        """Higher quantiles give weakly larger predictions."""
        x, y = make_data()
        forest = RandomForestRegressor(n_trees=15, seed=3).fit(x, y)
        point = x[0]
        low = forest.predict_one(point, quantile=0.1)
        mid = forest.predict_one(point, quantile=0.5)
        high = forest.predict_one(point, quantile=0.9)
        assert low <= mid <= high

    def test_quantile_1_is_max_vote(self):
        x, y = make_data()
        forest = RandomForestRegressor(n_trees=8, seed=4).fit(x, y)
        point = x[0]
        votes = [t.predict_one(point) for t in forest._trees]
        assert forest.predict_one(point, quantile=1.0) == pytest.approx(
            max(votes)
        )

    def test_mean_relative_error(self):
        x, y = make_data()
        forest = RandomForestRegressor(n_trees=10, seed=5).fit(x, y)
        err = forest.mean_relative_error(x, y)
        assert 0.0 <= err < 0.2


class TestValidation:
    def test_rejects_zero_trees(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((3, 2)), np.zeros(5))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict_one([1.0, 2.0])

    def test_is_fitted_flag(self):
        x, y = make_data(50)
        forest = RandomForestRegressor(n_trees=2)
        assert not forest.is_fitted
        forest.fit(x, y)
        assert forest.is_fitted
