"""Unit tests for the request lifecycle."""

import pytest

from repro.core.request import RequestPhase
from tests.conftest import Q1, Q2, make_request


class TestLifecycle:
    def test_initial_phase_is_prefill(self):
        assert make_request().phase is RequestPhase.PREFILL

    def test_moves_to_decode_when_prompt_done(self):
        r = make_request(prompt_tokens=100, decode_tokens=5)
        r.prefill_done = 100
        assert r.phase is RequestPhase.DECODE

    def test_finishes_after_all_tokens(self):
        r = make_request(prompt_tokens=10, decode_tokens=2)
        r.prefill_done = 10
        r.record_output_token(1.0)
        assert r.phase is RequestPhase.DECODE
        r.record_output_token(1.1)
        assert r.phase is RequestPhase.FINISHED
        assert r.is_finished

    def test_remaining_counters(self):
        r = make_request(prompt_tokens=100, decode_tokens=10)
        r.prefill_done = 30
        assert r.remaining_prefill == 70
        r.record_output_token(1.0)  # engine would not do this mid-prefill,
        assert r.remaining_decode == 9  # but the counter math must hold

    def test_token_after_finish_raises(self):
        r = make_request(prompt_tokens=10, decode_tokens=1)
        r.prefill_done = 10
        r.record_output_token(1.0)
        with pytest.raises(RuntimeError):
            r.record_output_token(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_request(prompt_tokens=0)
        with pytest.raises(ValueError):
            make_request(decode_tokens=0)


class TestLatencies:
    def test_ttft_recorded_on_first_token(self):
        r = make_request(arrival_time=5.0, prompt_tokens=10, decode_tokens=3)
        assert r.ttft is None
        r.prefill_done = 10
        r.record_output_token(7.5)
        assert r.ttft == pytest.approx(2.5)

    def test_ttlt_recorded_on_last_token(self):
        r = make_request(arrival_time=0.0, prompt_tokens=10, decode_tokens=2)
        r.prefill_done = 10
        r.record_output_token(1.0)
        assert r.ttlt is None
        r.record_output_token(2.0)
        assert r.ttlt == pytest.approx(2.0)

    def test_max_tbt_tracks_largest_gap(self):
        r = make_request(prompt_tokens=10, decode_tokens=4)
        r.prefill_done = 10
        for t in (1.0, 1.02, 1.30, 1.33):
            r.record_output_token(t)
        assert r.max_tbt == pytest.approx(0.28)

    def test_tbt_gap_misses_counted(self):
        r = make_request(prompt_tokens=10, decode_tokens=3, qos=Q1)
        r.prefill_done = 10
        r.record_output_token(1.0)
        r.record_output_token(1.03)   # 30 ms gap: fine
        r.record_output_token(1.20)   # 170 ms gap: miss
        assert r.tbt_gap_misses == 1

    def test_tbt_deadline_misses_cumulative(self):
        r = make_request(
            arrival_time=0.0, prompt_tokens=10, decode_tokens=3, qos=Q1
        )
        r.prefill_done = 10
        # Token deadlines: 6.0, 6.05, 6.10.
        r.record_output_token(5.0)
        r.record_output_token(6.04)
        r.record_output_token(6.20)
        assert r.tbt_deadline_misses == 1


class TestDeadlinesAndViolations:
    def test_deadline_properties(self):
        r = make_request(arrival_time=10.0, decode_tokens=5, qos=Q1)
        assert r.first_token_deadline == 16.0
        assert r.next_token_deadline == 16.0
        r.decoded = 2
        assert r.next_token_deadline == pytest.approx(16.10)

    def test_interactive_violation_is_ttft(self):
        r = make_request(prompt_tokens=10, decode_tokens=2, qos=Q1)
        r.prefill_done = 10
        r.record_output_token(7.0)  # past the 6 s TTFT
        r.record_output_token(7.1)
        assert r.violated_deadline

    def test_non_interactive_violation_is_ttlt(self):
        r = make_request(prompt_tokens=10, decode_tokens=2, qos=Q2)
        r.prefill_done = 10
        r.record_output_token(100.0)
        r.record_output_token(700.0)  # past the 600 s TTLT
        assert r.violated_deadline

    def test_violated_by_pending_request(self):
        r = make_request(qos=Q1)
        assert not r.violated_by(3.0)
        assert r.violated_by(6.5)

    def test_unfinished_counts_violated_without_now(self):
        assert make_request().violated_deadline


class TestEviction:
    def test_evict_resets_kv_state(self):
        r = make_request(prompt_tokens=100, decode_tokens=10)
        r.prefill_done = 100
        r.record_output_token(1.0)
        r.record_output_token(1.1)
        assert r.context_length == 102
        r.evict()
        assert r.context_length == 0
        assert r.prefill_target == 102
        assert r.remaining_prefill == 102
        assert r.evictions == 1
        assert r.phase is RequestPhase.PREFILL

    def test_post_eviction_recompute_restores_context(self):
        r = make_request(prompt_tokens=50, decode_tokens=5)
        r.prefill_done = 50
        r.record_output_token(1.0)
        r.evict()
        r.prefill_done = r.prefill_target
        assert r.phase is RequestPhase.DECODE
        assert r.context_length == 51
        r.record_output_token(2.0)
        assert r.context_length == 52

    def test_clone_fresh_resets_everything(self):
        r = make_request(prompt_tokens=40, decode_tokens=3)
        r.prefill_done = 40
        r.record_output_token(1.0)
        r.relegated = True
        clone = r.clone_fresh()
        assert clone.prefill_done == 0
        assert clone.decoded == 0
        assert clone.first_token_time is None
        assert not clone.relegated
        assert clone.prompt_tokens == 40
