"""Behavioural tests of QoServe's internal machinery over real runs:
load-adaptive alpha, replan caching, relegation accounting, and the
interplay of configuration toggles."""

import pytest

from repro.core.priority import MS_PER_TOKEN
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import build_trace, make_scheduler, run_replica_trace
from repro.schedulers import QoServeConfig, QoServeScheduler
from repro.workload.datasets import AZURE_CODE
from tests.conftest import Q1, make_request


@pytest.fixture(scope="module")
def em():
    return get_execution_model("llama3-8b")


class TestLoadAdaptiveAlpha:
    def test_alpha_rises_under_overload(self, em):
        scheduler = QoServeScheduler(
            em, QoServeConfig(use_forest_predictor=False)
        )
        trace = build_trace(AZURE_CODE, qps=8.0, num_requests=600, seed=1)
        run_replica_trace(em, scheduler, trace)
        # During the overloaded phase the controller saw high pressure
        # (the EMA decays through the drain, so peak is the witness).
        assert scheduler._adaptive_alpha is not None
        assert scheduler._adaptive_alpha.peak_pressure > (
            scheduler._adaptive_alpha.pressure_low
        )

    def test_alpha_stays_low_at_light_load(self, em):
        scheduler = QoServeScheduler(
            em, QoServeConfig(use_forest_predictor=False)
        )
        trace = build_trace(AZURE_CODE, qps=1.0, num_requests=150, seed=1)
        run_replica_trace(em, scheduler, trace)
        assert scheduler.hybrid.alpha <= 1.5 * MS_PER_TOKEN

    def test_fixed_alpha_never_adapts(self, em):
        scheduler = QoServeScheduler(
            em,
            QoServeConfig(alpha=0.004, use_forest_predictor=False),
        )
        trace = build_trace(AZURE_CODE, qps=8.0, num_requests=400, seed=1)
        run_replica_trace(em, scheduler, trace)
        assert scheduler.hybrid.alpha == 0.004


class TestReplanCache:
    def test_arrival_inserts_sorted(self, em):
        scheduler = QoServeScheduler(
            em, QoServeConfig(use_forest_predictor=False)
        )
        early_deadline = make_request(request_id=1, arrival_time=0.0,
                                      prompt_tokens=500, qos=Q1)
        scheduler.enqueue(early_deadline, 0.0)
        scheduler._replan(0.0)
        assert not scheduler._order_dirty
        # A later-deadline arrival lands behind; an earlier one ahead.
        later = make_request(request_id=2, arrival_time=5.0,
                             prompt_tokens=500, qos=Q1)
        scheduler.enqueue(later, 5.0)
        assert [r.request_id for r in scheduler._order_cache] == [1, 2]
        keys = scheduler._order_keys
        assert keys == sorted(keys)

    def test_replan_counts_down(self, em):
        from repro.engine.interface import EngineView
        from repro.engine.kvcache import KVCacheManager

        scheduler = QoServeScheduler(
            em,
            QoServeConfig(use_forest_predictor=False, replan_interval=4),
        )
        for i in range(5):
            scheduler.enqueue(
                make_request(request_id=i, prompt_tokens=30_000, qos=Q1),
                0.0,
            )
        view = EngineView(
            now=0.0, decode_requests=[],
            kv_cache=KVCacheManager(capacity_tokens=400_000),
            execution_model=em, max_decode_slots=256,
            inflight_prefill_ids=frozenset(),
        )
        scheduler.plan_prefill(view)  # dirty -> replans, counter resets
        assert scheduler._iterations_since_replan == 0
        scheduler.plan_prefill(view)  # clean -> counter advances
        assert scheduler._iterations_since_replan == 1


class TestRelegationAccounting:
    def test_relegated_time_recorded(self, em):
        trace = build_trace(AZURE_CODE, qps=8.0, num_requests=800, seed=2)
        scheduler = make_scheduler("qoserve-oracle", em)
        summary, engine = run_replica_trace(em, scheduler, trace)
        relegated = [r for r in engine.submitted if r.relegated]
        assert relegated, "expected relegation at 2x overload"
        for r in relegated:
            assert r.relegated_time is not None
            assert r.relegated_time >= r.arrival_time
        assert scheduler.relegation_events >= len(relegated)

    def test_relegated_requests_still_complete(self, em):
        trace = build_trace(AZURE_CODE, qps=8.0, num_requests=800, seed=2)
        summary, engine = run_replica_trace(
            em, make_scheduler("qoserve-oracle", em), trace
        )
        assert summary.finished == summary.num_requests


class TestConfigToggles:
    @pytest.mark.parametrize("toggle", [
        dict(dynamic_chunking=False),
        dict(eager_relegation=False),
        dict(hybrid_prioritization=False),
        dict(selective_preemption=False),
        dict(use_hints=False),
    ])
    def test_every_toggle_runs_clean(self, em, toggle):
        config = QoServeConfig(use_forest_predictor=False, **toggle)
        trace = build_trace(AZURE_CODE, qps=2.5, num_requests=120, seed=3)
        summary, _ = run_replica_trace(
            em, QoServeScheduler(em, config), trace
        )
        assert summary.finished == 120

    def test_forest_vs_oracle_same_workload_comparable(self, em):
        trace = build_trace(AZURE_CODE, qps=2.5, num_requests=200, seed=4)
        oracle, _ = run_replica_trace(
            em, make_scheduler("qoserve-oracle", em), trace.fresh_copy()
        )
        forest, _ = run_replica_trace(
            em, make_scheduler("qoserve", em), trace.fresh_copy()
        )
        assert abs(
            oracle.violations.overall_pct - forest.violations.overall_pct
        ) < 2.0


class TestOtherDeployments:
    @pytest.mark.parametrize("deployment", ["qwen-7b", "llama3-70b"])
    def test_qoserve_runs_on_table1_deployments(self, deployment):
        em = get_execution_model(deployment)
        trace = build_trace(AZURE_CODE, qps=2.0, num_requests=80, seed=5)
        summary, _ = run_replica_trace(
            em, make_scheduler("qoserve-oracle", em), trace
        )
        assert summary.finished == 80
        assert summary.violations.tbt_miss_pct < 5.0
