"""Unit tests for the CART regression tree."""

import numpy as np
import pytest

from repro.forest import DecisionTreeRegressor


def make_step_data(n=200, seed=0):
    """A noiseless step function a depth-1 tree can fit exactly."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 1))
    y = np.where(x[:, 0] > 0.5, 2.0, -1.0)
    return x, y


class TestFitting:
    def test_fits_step_function_exactly(self):
        x, y = make_step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        preds = tree.predict(x)
        assert np.allclose(preds, y)

    def test_constant_target_single_leaf(self):
        x = np.arange(10, dtype=float)[:, None]
        y = np.full(10, 3.5)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.node_count == 1
        assert tree.predict_one([123.0]) == pytest.approx(3.5)

    def test_max_depth_zero_is_mean(self):
        x, y = make_step_data()
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        assert tree.predict_one([0.1]) == pytest.approx(float(y.mean()))

    def test_min_samples_leaf_respected(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = DecisionTreeRegressor(min_samples_leaf=3).fit(x, y)
        # A 2/2 split violates the 3-sample minimum; no split happens.
        assert tree.node_count == 1

    def test_multifeature_picks_informative_feature(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(300, 3))
        y = np.where(x[:, 2] > 0.3, 5.0, 1.0)  # only feature 2 matters
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert np.allclose(tree.predict(x), y)

    def test_piecewise_linear_approximation_improves_with_depth(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(500, 1))
        y = 3.0 * x[:, 0]
        shallow = DecisionTreeRegressor(max_depth=2).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(x, y)
        err_shallow = np.mean((shallow.predict(x) - y) ** 2)
        err_deep = np.mean((deep.predict(x) - y) ** 2)
        assert err_deep < err_shallow


class TestValidation:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 1)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 1)), np.zeros(0))

    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict_one([1.0])


class TestPrediction:
    def test_predict_batch_matches_predict_one(self):
        x, y = make_step_data()
        tree = DecisionTreeRegressor().fit(x, y)
        batch = tree.predict(x[:10])
        singles = [tree.predict_one(row) for row in x[:10]]
        assert np.allclose(batch, singles)

    def test_predict_1d_input(self):
        x, y = make_step_data()
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.predict(np.array([0.9])).shape == (1,)
