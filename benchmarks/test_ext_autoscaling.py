"""Extension bench: autoscaled vs static provisioning (Section 2.3)."""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import ext_autoscaling


def test_ext_autoscaling(run_once):
    result = run_once(ext_autoscaling.run, SEARCH_SCALE)
    report(result)

    peak = result.row_by(provisioning="static-peak")
    mean = result.row_by(provisioning="static-mean")
    scaled = result.row_by(provisioning="autoscaled")

    # Peak provisioning buys SLOs with idle GPUs; mean provisioning is
    # cheaper but hurts SLOs; autoscaling sits at (or below) peak cost
    # with peak-like attainment.
    assert mean["gpu_hours"] < peak["gpu_hours"]
    assert scaled["gpu_hours"] <= peak["gpu_hours"] * 1.02
    assert (
        scaled["viol_overall_pct"] <= mean["viol_overall_pct"] + 1e-9
    )
    assert scaled["scaling_events"] >= 2
