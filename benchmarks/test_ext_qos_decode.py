"""Extension bench: multi-TBT decode pools (the paper's future work)."""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import ext_qos_decode

LOADS = (6.0, 12.0, 18.0)


def test_ext_qos_decode_pools(run_once):
    result = run_once(ext_qos_decode.run, SEARCH_SCALE, loads=LOADS)
    report(result)

    def strict_miss(pool, qps):
        return result.row_by(pool=pool, qps=qps)["tbt_miss_strict_pct"]

    high = LOADS[-1]
    # Static strictest-TBT sizing (the paper's status quo) and
    # PolyServe-style partitioning both blow the strict class's pacing
    # once contexts are heterogeneous; the TBT-aware shared pool keeps
    # it clean.
    assert strict_miss("qos-shared", high) < strict_miss(
        "strict-shared", high
    )
    assert strict_miss("qos-shared", high) < strict_miss(
        "partitioned", high
    )
    assert strict_miss("qos-shared", high) < 2.0

    # Nothing is dropped by any pool: admission queues, never rejects.
    for row in result.rows:
        assert row["unfinished"] == 0
