"""Extension bench: ConServe-style binary collocation vs QoServe."""

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import ext_conserve

LOADS = (2.0, 3.5, 5.0)


def test_ext_conserve_comparison(run_once):
    result = run_once(ext_conserve.run, BENCH_SCALE, loads=LOADS)
    report(result)

    def row(scheme, qps):
        return result.row_by(scheme=scheme, qps=qps)

    high = LOADS[-1]
    conserve = row("ConServe", high)
    qoserve = row("QoServe", high)

    # The binary classification's blind spot: the offline mass is
    # served deadline-unaware, so Q2's 600 s target degrades long
    # before QoServe's (which spends Q3's slack first).
    assert conserve["q2_p99_s"] > qoserve["q2_p99_s"]
    assert (
        qoserve["viol_overall_pct"]
        <= conserve["viol_overall_pct"] + 0.5
    )
    # QoServe protects the interactive class better than reactive
    # binary collocation: harvested offline work ends up holding the
    # KV/slot capacity interactive arrivals need during surges.
    assert qoserve["viol_q1_pct"] <= conserve["viol_q1_pct"]
    assert qoserve["viol_q1_pct"] <= 2.0
