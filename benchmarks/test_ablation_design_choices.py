"""Design-choice ablation benches (DESIGN.md extras, beyond Table 5)."""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import ablation_extras


def test_predictor_ablation(run_once):
    result = run_once(ablation_extras.run_predictor_ablation, SEARCH_SCALE)
    report(result)

    def tbt(name):
        return result.row_by(predictor=name)["tbt_miss_pct"]

    # More conservative prediction -> fewer pacing misses.  Notably the
    # *exact* oracle paces worse than the biased forest: the packer may
    # split the granted budget across requests whose attention context
    # differs from the single-chunk shape the inversion assumed, so
    # zero-margin predictions overrun — which is precisely why the
    # paper tunes its predictor to err toward smaller chunks.
    assert (
        tbt("forest paranoid (q=1.0, x1.25)")
        <= tbt("forest (q=0.75, x1.10)") + 0.25
    )
    assert (
        tbt("forest (q=0.75, x1.10)")
        <= tbt("forest aggressive (q=0.5, x1.0)") + 0.25
    )
    assert tbt("oracle") >= tbt("forest (q=0.75, x1.10)") - 0.25


def test_preemption_ablation(run_once):
    result = run_once(ablation_extras.run_preemption_ablation, SEARCH_SCALE)
    report(result)
    on = result.row_by(selective_preemption="on")
    off = result.row_by(selective_preemption="off")
    # Pinning at-risk in-flight prefills should not hurt Q1, and
    # typically trims its violations.
    assert on["q1_viol_pct"] <= off["q1_viol_pct"] + 1.0


def test_estimator_ablation(run_once):
    result = run_once(ablation_extras.run_estimator_ablation, SEARCH_SCALE)
    report(result)
    history = result.row_by(estimator="history mean+2sigma")
    oracle = result.row_by(estimator="oracle")
    # Section 4.4.1's claim: the simple history estimator is within
    # noise of ground-truth decode lengths.
    assert history["viol_pct"] <= oracle["viol_pct"] + 2.0
