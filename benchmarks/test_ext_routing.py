"""Extension bench: load-balancing ablation on a QoServe cluster."""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import ext_routing


def test_ext_routing(run_once):
    result = run_once(ext_routing.run, SEARCH_SCALE)
    report(result)

    by_routing = {row["routing"]: row for row in result.rows}
    rr = by_routing["round-robin"]
    ll = by_routing["least-loaded"]
    p2 = by_routing["power-of-two"]

    # Load-aware routing evens per-replica work relative to blind
    # round-robin under heavy-tailed prompts...
    assert ll["busy_imbalance_pct"] <= rr["busy_imbalance_pct"] + 2.0
    # ...and none of the strategies breaks SLO attainment (QoServe's
    # per-replica scheduling absorbs most of the imbalance, which is
    # why the paper gets away with round-robin).
    for row in (rr, ll, p2):
        assert row["viol_overall_pct"] <= 5.0
