"""Micro-benchmarks of the simulator's hot paths.

These time the operations that dominate simulation wall-clock — and
back the paper's Section 4.5.3 scalability argument: QoServe's
scheduling step must stay cheap (the paper claims O(log N_new) for
selection) even with thousands of queued requests, in contrast to
SLOs-Serve's per-iteration dynamic program over all requests and KV
blocks.
"""

import numpy as np
import pytest

from repro.core.predictor import OracleBatchPredictor, cached_forest_predictor
from repro.core.chunking import DynamicChunker
from repro.core.qos import DEFAULT_TIERS
from repro.core.request import Request
from repro.engine.interface import EngineView
from repro.engine.kvcache import KVCacheManager
from repro.experiments.configs import get_execution_model
from repro.perfmodel.execution import BatchShape, PrefillChunk
from repro.schedulers import EDFScheduler, QoServeScheduler, QoServeConfig

EM = get_execution_model("llama3-8b")


def make_queue(n, seed=0):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        requests.append(
            Request(
                request_id=i,
                arrival_time=float(rng.uniform(0, 100)),
                prompt_tokens=int(rng.integers(100, 8000)),
                decode_tokens=int(rng.integers(1, 500)),
                qos=DEFAULT_TIERS[int(rng.integers(0, 3))],
            )
        )
    return requests


def make_view(decodes=32):
    decode_requests = []
    for i in range(decodes):
        r = Request(
            request_id=10_000 + i, arrival_time=0.0,
            prompt_tokens=1000, decode_tokens=100,
            qos=DEFAULT_TIERS[0],
        )
        r.prefill_done = 1000
        r.decoded = 5
        decode_requests.append(r)
    return EngineView(
        now=50.0,
        decode_requests=decode_requests,
        kv_cache=KVCacheManager(capacity_tokens=400_000),
        execution_model=EM,
        max_decode_slots=256,
        inflight_prefill_ids=frozenset(),
    )


def test_batch_time(benchmark):
    """Ground-truth cost model: called once per simulated iteration."""
    shape = BatchShape([PrefillChunk(512, 1024)], 64, 64 * 1500)
    result = benchmark(EM.batch_time, shape)
    assert result > 0


def test_forest_predict(benchmark):
    """Forest prediction with memoization (the chunker's inner loop)."""
    predictor = cached_forest_predictor(EM)
    shape = BatchShape([PrefillChunk(512, 1024)], 64, 64 * 1500)
    result = benchmark(predictor.predict, shape)
    assert result > 0


def test_forest_predict_pertree(benchmark):
    """Reference per-tree scalar prediction (the pre-fused path)."""
    from repro.perfmodel.profiler import batch_features

    forest = cached_forest_predictor(EM).forest
    features = batch_features(BatchShape([PrefillChunk(512, 1024)], 64,
                                         64 * 1500))
    result = benchmark(forest.predict_one_pertree, features, quantile=0.75)
    assert result > 0


def test_forest_predict_fused(benchmark):
    """Fused flat-array scalar prediction (memo-miss inner loop)."""
    from repro.perfmodel.profiler import batch_features

    forest = cached_forest_predictor(EM).forest
    features = batch_features(BatchShape([PrefillChunk(512, 1024)], 64,
                                         64 * 1500))
    result = benchmark(forest.predict_one, features, quantile=0.75)
    assert result > 0


def test_forest_predict_batch(benchmark):
    """Vectorized many-row prediction (validation / training error)."""
    from repro.perfmodel.profiler import batch_features

    forest = cached_forest_predictor(EM).forest
    features = batch_features(BatchShape([PrefillChunk(512, 1024)], 64,
                                         64 * 1500))
    rows = np.asarray([features] * 512)
    result = benchmark(forest.predict_batch, rows, quantile=0.75)
    assert result.shape == (512,)


def test_dynamic_chunker_budget(benchmark):
    """Full chunk-size inversion against the oracle predictor."""
    chunker = DynamicChunker(OracleBatchPredictor(EM))
    view = make_view(decodes=32)

    def budget():
        return chunker.prefill_budget(
            50.0, view.decode_requests, prefill_context_before=1024
        )

    decision = benchmark(budget)
    assert decision.prefill_budget >= chunker.min_chunk


@pytest.mark.parametrize("queue_size", [100, 1000, 4000])
def test_qoserve_plan_with_queue(benchmark, queue_size):
    """QoServe's full scheduling step at growing queue depth.

    Section 4.5.3: the per-iteration cost must grow gently with queue
    size (sort + linear relegation scan here, amortized by the replan
    interval) — this is the measurement behind 'efficiently scales to
    larger configurations'.
    """
    scheduler = QoServeScheduler(
        EM, QoServeConfig(use_forest_predictor=False)
    )
    for r in make_queue(queue_size):
        scheduler.enqueue(r, 0.0)
    view = make_view(decodes=16)

    def plan():
        scheduler._order_dirty = True  # force the full replan path
        return scheduler.plan_prefill(view)

    assignments = benchmark(plan)
    assert assignments


@pytest.mark.parametrize("queue_size", [100, 4000])
def test_edf_heap_plan_with_queue(benchmark, queue_size):
    """The lazy-heap baselines: near-constant per-iteration cost."""
    scheduler = EDFScheduler(chunk_size=256)
    for r in make_queue(queue_size):
        scheduler.enqueue(r, 0.0)
    view = make_view(decodes=16)
    assignments = benchmark(scheduler.plan_prefill, view)
    assert assignments


def test_kv_cache_grow_release(benchmark):
    kv = KVCacheManager(capacity_tokens=400_000)

    def cycle():
        for rid in range(32):
            kv.grow(rid, 100)
        for rid in range(32):
            kv.release(rid)

    benchmark(cycle)
    assert kv.used_blocks == 0
