"""Figure 15 bench: comparisons to Medha and PolyServe."""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import fig15_concurrent_work


def test_fig15a_medha_chunk_traces(run_once):
    result = run_once(
        fig15_concurrent_work.run_medha_comparison, SEARCH_SCALE
    )
    report(result)

    def chunks(scheme):
        return [
            row["chunk_size"] for row in result.rows
            if row["scheme"] == scheme
        ]

    medha = chunks("Medha")
    qoserve = chunks("QoServe")
    assert medha and qoserve
    # QoServe opportunistically exceeds Medha's fixed-TBT ceiling when
    # slack accumulates (Figure 15a's divergence).
    assert max(qoserve) > max(medha)


def test_fig15a_chunking_goodput(run_once):
    result = run_once(
        fig15_concurrent_work.run_medha_goodput, SEARCH_SCALE
    )
    report(result)
    medha = result.row_by(scheme="Medha")["goodput_qps"]
    qoserve = result.row_by(scheme="QoServe")["goodput_qps"]
    # Paper: +23% goodput (0.32 vs 0.26 QPS) from the chunking
    # strategy alone.
    assert qoserve > medha


def test_fig15b_polyserve_gpus(run_once):
    result = run_once(
        fig15_concurrent_work.run_polyserve_comparison,
        SEARCH_SCALE,
        q1_shares=(0.2, 0.5, 0.8),
    )
    report(result)
    for row in result.rows:
        # Colocation always needs at most PolyServe's GPU count, and
        # strictly fewer for at least one mix.
        assert row["qoserve_gpus"] <= row["polyserve_gpus"]
    assert any(
        row["qoserve_gpus"] < row["polyserve_gpus"] for row in result.rows
    )
