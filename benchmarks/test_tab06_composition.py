"""Table 6 bench: skewed workload mixes and modified SLOs."""

from benchmarks.conftest import BENCH_SCALE, SEARCH_SCALE, report
from repro.experiments import tab06_composition


def test_tab06_skewed_compositions(run_once):
    result = run_once(tab06_composition.run, BENCH_SCALE)
    report(result)

    for mix in ("70-15-15", "15-15-70"):
        qoserve = result.row_by(composition=mix, scheme="QoServe")
        fcfs = result.row_by(composition=mix, scheme="Sarathi-FCFS")
        edf = result.row_by(composition=mix, scheme="Sarathi-EDF")
        # QoServe never violates more than the baselines, and on the
        # interactive-heavy skew it is an order of magnitude better
        # (paper: <=5% vs ~100% / ~98%).  On the batch-heavy skew the
        # reduced-scale window is too short for Q3's 1800 s TTLT to
        # blow, so the gain shows as backlog clearance (lower Q3
        # median) rather than recorded violations.
        assert qoserve["viol_pct"] <= fcfs["viol_pct"]
        assert qoserve["viol_pct"] <= edf["viol_pct"]
        assert qoserve["q3_p50_s"] < edf["q3_p50_s"]
        # Per-tier medians stay inside the Table 3 SLOs.
        assert qoserve["q1_p50_s"] < 6.0
        assert qoserve["q2_p50_s"] < 600.0
        assert qoserve["q3_p50_s"] < 1800.0
    vip_mix = result.row_by(composition="70-15-15", scheme="QoServe")
    vip_fcfs = result.row_by(composition="70-15-15", scheme="Sarathi-FCFS")
    assert vip_mix["viol_pct"] < 0.25 * vip_fcfs["viol_pct"]


def test_tab06_slo_variation(run_once):
    result = run_once(tab06_composition.run_slo_variation, SEARCH_SCALE)
    report(result)
    edf = result.row_by(scheme="Sarathi-EDF")["goodput_qps"]
    qoserve = result.row_by(scheme="QoServe")["goodput_qps"]
    # Paper: QoServe 5.0 vs Sarathi-EDF 3.7 QPS under the modified
    # (3s,50ms)/(6s,50ms)/(1000s) SLOs.
    assert qoserve > edf
