"""Figure 6 bench: the five-request dynamic-chunking walkthrough."""

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import fig06_illustration


def test_fig06_walkthrough(run_once):
    result = run_once(fig06_illustration.run, BENCH_SCALE)
    report(result)

    sota = result.row_by(scheduler="SOTA (FCFS, chunk 256)")
    qoserve = result.row_by(scheduler="QoServe")

    # The figure's two claims: (1) QoServe prioritizes A by deadline
    # (FCFS leaves it stuck behind B/C's prefill, missing its 2 s
    # TTFT); (2) dynamic chunking finishes the batch work sooner.
    assert qoserve["a_ttft_s"] < 2.0 <= sota["a_ttft_s"]
    assert qoserve["makespan_s"] < sota["makespan_s"]
    assert qoserve["missed_deadlines"] < sota["missed_deadlines"]
    assert qoserve["missed_deadlines"] == 0
