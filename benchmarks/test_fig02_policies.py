"""Figure 2 bench: classic multi-SLA policies vs QoServe."""

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import fig02_policies

LOADS = (2.0, 3.0, 4.0, 6.0)


def test_fig02_policy_comparison(run_once):
    result = run_once(fig02_policies.run, BENCH_SCALE, loads=LOADS)
    report(result)

    def viol(policy, qps):
        return result.row_by(policy=policy, qps=qps)["violations_pct"]

    def long_viol(policy, qps):
        return result.row_by(policy=policy, qps=qps)[
            "long_violations_pct"
        ]

    high = LOADS[-1]
    # FCFS breaks down first: urgent requests stall behind non-urgent.
    assert viol("FCFS", high) > viol("QoServe", high)
    # EDF cannot gracefully degrade at high load.
    assert viol("EDF", high) > viol("QoServe", high)
    # SJF/SRPF sacrifice long jobs even when QoServe does not.
    assert long_viol("SRPF", high) > long_viol("QoServe", high)
    # QoServe minimizes violations across all load conditions.
    for qps in LOADS:
        competitors = [viol(p, qps) for p in ("FCFS", "SJF", "SRPF", "EDF")]
        assert viol("QoServe", qps) <= min(competitors) + 1.0
