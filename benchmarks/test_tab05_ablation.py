"""Table 5 bench: contribution of each QoServe technique."""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import tab05_ablation


def test_tab05_ablation(run_once):
    result = run_once(tab05_ablation.run, SEARCH_SCALE)
    report(result)

    goodput = {row["config"]: row["goodput_qps"] for row in result.rows}
    viol = {
        row["config"]: row["high_load_viol_pct"] for row in result.rows
    }

    # Dynamic chunking is the big goodput lever (paper: +20%; larger
    # here because AzCode is decode-light, leaving more slack).
    assert goodput["QoServe (DC)"] > goodput["Sarathi-EDF"] * 1.1
    # Each additional technique never hurts goodput materially.
    assert goodput["QoServe (DC+ER)"] >= goodput["QoServe (DC)"] * 0.95
    assert (
        goodput["QoServe (DC+ER+HP)"] >= goodput["QoServe (DC+ER)"] * 0.95
    )
    # At high load the full stack has far fewer violations than the
    # EDF baseline (paper: 100% -> 16%).
    assert viol["QoServe (DC+ER+HP)"] < viol["Sarathi-EDF"]
