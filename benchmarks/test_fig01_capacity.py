"""Figure 1 bench: the paper's headline results.

Top-right panel: GPUs needed for a fixed multi-tier cluster load —
siloed SOTA vs QoServe (delegates to the Table 4 machinery).
Bottom panels: graceful degradation under bursty load (delegates to
the Figure 12 machinery).
"""

from benchmarks.conftest import BENCH_SCALE, SEARCH_SCALE, report
from repro.experiments import fig01_headline


def test_fig01_gpu_savings(run_once):
    result = run_once(fig01_headline.run, SEARCH_SCALE)
    report(result)

    silo = result.row_by(scheme="SOTA-Siloed")
    qoserve = result.row_by(scheme="QoServe")
    # Paper: 23% fewer GPUs at equal load with QoS maintained.
    assert qoserve["gpus"] < silo["gpus"]
    assert qoserve["viol_pct"] <= 1.0


def test_fig01_burst_resilience(run_once):
    result = run_once(fig01_headline.run_burst, BENCH_SCALE)
    report(result)
    qoserve = result.row_by(scheme="QoServe")
    fcfs = result.row_by(scheme="Sarathi-FCFS")
    # "QoServe maintains low latency while SOTA scheduling succumbs to
    # cascading deadline violations under bursty loads."
    assert qoserve["viol_overall_pct"] < 0.5 * fcfs["viol_overall_pct"]
