"""Figure 8 bench: prefill-replica goodput under PD disaggregation.

Default coverage follows the artifact appendix (Llama3-8B TP1 on the
Azure Conv trace); the full grid is reachable via the experiment's
``deployments`` parameter.
"""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import fig08_disagg


def test_fig08_disagg_goodput(run_once):
    result = run_once(
        fig08_disagg.run, SEARCH_SCALE, deployments=("llama3-8b",)
    )
    report(result)

    def goodput(scheme):
        return result.row_by(
            deployment="llama3-8b", scheme=scheme
        )["goodput_qps"]

    fcfs = goodput("Disagg-FCFS")
    edf = goodput("Disagg-EDF")
    qoserve = goodput("Disagg-QoServe")
    # Margins shrink without dynamic-chunking headroom (the paper says
    # as much); QoServe clearly beats FCFS and sits at/near EDF — at
    # an 8K chunk the two deadline-aware policies are close to tied.
    assert qoserve > fcfs * 1.02
    assert qoserve >= edf * 0.85
