"""Figure 5 bench: eager relegation under overload.

The EDF cascade this figure demonstrates only ignites once overdue
Q2 requests (deadline = arrival + 600 s) start outranking fresh Q1
arrivals in deadline order, so the run must sustain overload beyond
that horizon — hence the longer-than-default duration floor.
"""

from benchmarks.conftest import report
from repro.experiments import fig05_relegation
from repro.experiments.configs import Scale

LOADS = (3.0, 4.5, 6.0)
FIG05_SCALE = Scale(num_requests=1000, min_duration_s=1000.0,
                    label="bench-long")


def test_fig05_relegation(run_once):
    result = run_once(fig05_relegation.run, FIG05_SCALE, loads=LOADS)
    report(result)

    def row(config, qps):
        return result.row_by(config=config, qps=qps)

    high = LOADS[-1]
    eager = row("eager-relegation", high)
    baseline = row("no-relegation", high)
    # Relegation keeps the median request healthy under overload; the
    # no-relegation variant cascades (paper: orders of magnitude).
    assert eager["median_latency_s"] < baseline["median_latency_s"]
    assert eager["violations_pct"] < 0.25 * max(
        baseline["violations_pct"], 1.0
    )
    # Only a small fraction is relegated (paper: ~5%).
    assert 0.0 < eager["relegated_pct"] < 15.0
    # At comfortable load, nothing is relegated and behaviour matches.
    low = LOADS[0]
    assert row("eager-relegation", low)["relegated_pct"] < 1.0
