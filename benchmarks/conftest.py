"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures at
reduced scale (the artifact appendix ships "tiny" variants the same
way), prints the rows the paper reports, writes them under
``benchmarks/output/``, and asserts the qualitative shape — who wins,
in which direction — rather than absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `tests.conftest` importable when pytest is rooted at benchmarks/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.experiments.configs import Scale  # noqa: E402
from repro.experiments.result import ExperimentResult  # noqa: E402

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Scale used by benches that run a single simulation per data point.
BENCH_SCALE = Scale(num_requests=1200, min_duration_s=650.0, label="bench")

#: Scale for benches that run many simulations (goodput searches).
SEARCH_SCALE = Scale(num_requests=800, min_duration_s=300.0,
                     label="bench-search")


def report(result: ExperimentResult) -> ExperimentResult:
    """Print a result table and persist it under benchmarks/output/."""
    text = result.render()
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{result.experiment}.txt"
    path.write_text(text + "\n")
    return result


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
