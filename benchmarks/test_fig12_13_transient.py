"""Figures 12 and 13 bench: diurnal transient overload."""

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import fig12_13_transient


def test_fig12_transient_violations(run_once):
    result = run_once(fig12_13_transient.run, BENCH_SCALE)
    report(result)

    def row(scheme):
        return result.row_by(scheme=scheme)

    qoserve = row("QoServe")
    fcfs = row("Sarathi-FCFS")
    edf = row("Sarathi-EDF")

    # QoServe's graceful degradation: an order of magnitude fewer
    # violations than the baselines under the bursty pattern, and the
    # important (paid-tier) requests are protected via hints.
    assert qoserve["viol_overall_pct"] < fcfs["viol_overall_pct"]
    assert qoserve["viol_overall_pct"] < edf["viol_overall_pct"]
    assert (
        qoserve["viol_important_pct"] <= qoserve["viol_overall_pct"] + 1e-9
    )
    assert qoserve["viol_important_pct"] < 10.0


def test_fig13_rolling_latency(run_once):
    result = run_once(
        fig12_13_transient.run_rolling_latency, BENCH_SCALE
    )
    report(result)

    def series(scheme, tier):
        return [
            row["p99_latency_s"]
            for row in result.rows
            if row["scheme"] == scheme and row["tier"] == tier
            and row["p99_latency_s"] == row["p99_latency_s"]  # not NaN
        ]

    # QoServe's Q1 rolling p99 stays bounded through the bursts where
    # FCFS diverges into cascading queueing delay.
    qoserve_q1 = series("QoServe", "Q1")
    fcfs_q1 = series("Sarathi-FCFS", "Q1")
    assert qoserve_q1 and fcfs_q1
    assert max(qoserve_q1) < max(fcfs_q1)
