"""Figure 4 bench: the chunk-size throughput/latency profile."""

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import fig04_chunk_tradeoff


def test_fig04_chunk_tradeoff(run_once):
    result = run_once(fig04_chunk_tradeoff.run, BENCH_SCALE)
    report(result)

    throughput = {
        row["chunk_size"]: row["throughput_tokens_per_s"]
        for row in result.rows
    }
    latency = {
        row["chunk_size"]: row["batch_latency_ms"] for row in result.rows
    }

    # Throughput rises steeply then saturates near chunk 2500 (paper:
    # "throughput saturates around 2500, we choose that as the maximum
    # chunk size").
    assert throughput[2500] > 1.5 * throughput[256]
    assert abs(throughput[4096] - throughput[2500]) < 0.1 * throughput[2500]

    # Latency grows monotonically; the 50 ms SLO line falls between
    # chunk 256 and 512 (paper annotates chunk ~330).
    chunks = sorted(latency)
    assert all(
        latency[a] <= latency[b] for a, b in zip(chunks, chunks[1:])
    )
    assert latency[256] < 55.0 < latency[512]
