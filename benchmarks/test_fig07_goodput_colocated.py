"""Figure 7 bench: max per-replica goodput (PD colocation).

Default coverage matches the artifact appendix: the Llama3-8B (TP1,
A100) row across all three datasets.  The full three-deployment grid
of the paper is available by calling the experiment directly with
``deployments=("llama3-8b", "qwen-7b", "llama3-70b")``.
"""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import fig07_goodput


def test_fig07_goodput(run_once):
    result = run_once(
        fig07_goodput.run,
        SEARCH_SCALE,
        deployments=("llama3-8b",),
    )
    report(result)

    def goodput(dataset, scheme):
        return result.row_by(
            deployment="llama3-8b", dataset=dataset, scheme=scheme
        )["goodput_qps"]

    for dataset in ("AzCode", "AzConv", "ShareGPT"):
        fcfs = goodput(dataset, "Sarathi-FCFS")
        edf = goodput(dataset, "Sarathi-EDF")
        qoserve = goodput(dataset, "QoServe")
        # Paper: QoServe 1.5-2.4x over FCFS and 20-40% over EDF; we
        # assert the ordering plus a meaningful margin over FCFS.
        assert qoserve > fcfs * 1.2, dataset
        assert qoserve >= edf, dataset
