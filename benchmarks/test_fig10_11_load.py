"""Figures 10 and 11 bench: latency and violations under load.

One sweep powers both figures (as in the paper); the two tests project
and check each figure's panels.  Coverage follows the artifact
appendix: Llama3-8B TP1 on the Azure Code trace with a coarser QPS
grid than the paper.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import fig10_11_load_sweep

LOADS = (2.0, 3.0, 4.5, 6.0)

_cache = {}


def _sweep():
    if "result" not in _cache:
        _cache["result"] = fig10_11_load_sweep.run(
            BENCH_SCALE, loads=LOADS
        )
    return _cache["result"]


def test_fig10_latency_under_load(run_once):
    combined = run_once(_sweep)
    result = report(fig10_11_load_sweep.figure10_view(combined))

    def q1_p95(scheme, qps):
        return result.row_by(scheme=scheme, qps=qps)["q1_p95_s"]

    high = LOADS[-1]
    # QoServe keeps Q1 tail latency within SLO territory at loads where
    # FCFS has collapsed into head-of-line blocking.
    assert q1_p95("QoServe", high) < q1_p95("Sarathi-FCFS", high)
    assert q1_p95("QoServe", high) < 10.0
    # At low load every scheme is comfortable.
    assert q1_p95("Sarathi-EDF", LOADS[0]) < 10.0


def test_fig11_violations(run_once):
    combined = run_once(_sweep)
    result = report(fig10_11_load_sweep.figure11_view(combined))

    def row(scheme, qps):
        return result.row_by(scheme=scheme, qps=qps)

    high = LOADS[-1]
    # QoServe has the fewest overall violations at every load.
    for qps in LOADS:
        qoserve = row("QoServe", qps)["viol_overall_pct"]
        for scheme in ("Sarathi-FCFS", "Sarathi-SRPF", "Sarathi-EDF"):
            assert qoserve <= row(scheme, qps)["viol_overall_pct"] + 1.0

    # SRPF starves long requests (Figure 11c).
    srpf = row("Sarathi-SRPF", high)
    assert srpf["viol_long_pct"] > srpf["viol_short_pct"]

    # FCFS violates the strictest bucket first (Figure 11d).
    fcfs = row("Sarathi-FCFS", high)
    assert fcfs["viol_q1_pct"] >= fcfs["viol_q3_pct"]

    # QoServe sustains roughly 40% more load at zero violations than
    # the best baseline does (paper Section 4.2).
    def max_clean_load(scheme):
        clean = [
            qps for qps in LOADS
            if row(scheme, qps)["viol_overall_pct"] <= 1.0
        ]
        return max(clean) if clean else 0.0

    best_baseline = max(
        max_clean_load(s)
        for s in ("Sarathi-FCFS", "Sarathi-SRPF", "Sarathi-EDF")
    )
    assert max_clean_load("QoServe") >= best_baseline
