"""Figure 9 bench: dynamic chunk sizes over consecutive batches."""

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import fig09_chunk_trace


def test_fig09_chunk_trace(run_once):
    result = run_once(fig09_chunk_trace.run, BENCH_SCALE)
    report(result)

    chunks = [row["chunk_size"] for row in result.rows]
    assert len(chunks) >= 100

    # The scheduler actually varies chunk size with slack: both large
    # (near the 2500 saturation cap) and small chunks appear.
    assert max(chunks) >= 2000
    assert min(chunks) < 1000
    # Execution time tracks chunk size.
    big = [r["exec_time_ms"] for r in result.rows if r["chunk_size"] >= 2000]
    small = [r["exec_time_ms"] for r in result.rows if r["chunk_size"] <= 512]
    if big and small:
        assert (sum(big) / len(big)) > (sum(small) / len(small))
