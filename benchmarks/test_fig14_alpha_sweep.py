"""Figure 14 bench: the hybrid prioritization parameter alpha."""

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments import fig14_alpha_sweep

LOADS = (2.0, 4.0, 6.0)


def test_fig14_alpha_tradeoff(run_once):
    result = run_once(
        fig14_alpha_sweep.run, BENCH_SCALE, loads=LOADS
    )
    report(result)

    def row(alpha, qps):
        return result.row_by(alpha_ms_per_token=alpha, qps=qps)

    high = LOADS[-1]
    mid = LOADS[len(LOADS) // 2]
    # Larger alpha deprioritizes long requests: median latency falls
    # at and beyond the saturation point...
    assert (
        row(4.0, high)["median_latency_s"]
        <= row(0.0, high)["median_latency_s"]
    )
    assert (
        row(4.0, mid)["median_latency_s"]
        <= row(0.0, mid)["median_latency_s"]
    )
    # ...at the cost of violating more long-request deadlines.  The
    # fairness penalty shows in the overloaded-but-not-collapsed
    # region; at total collapse (alpha=0 EDF melts down) everyone
    # violates, which is exactly why alpha must grow with load.
    assert (
        row(4.0, mid)["long_violations_pct"]
        >= row(0.0, mid)["long_violations_pct"] - 1.0
    )
