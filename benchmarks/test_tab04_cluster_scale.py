"""Table 4 / Figure 1 bench: cluster-scale silo vs QoServe."""

from benchmarks.conftest import SEARCH_SCALE, report
from repro.experiments import tab04_cluster_scale


def test_tab04_cluster_scale(run_once):
    result = run_once(tab04_cluster_scale.run, SEARCH_SCALE)
    report(result)

    tuned_silo, squeezed_silo, qoserve = result.rows

    # QoServe serves the same cluster load with fewer GPUs than the
    # goodput-tuned silo (paper: 13 vs 10, a 23% saving) while keeping
    # violations at/near zero.
    assert qoserve["gpus"] < tuned_silo["gpus"]
    assert qoserve["viol_overall_pct"] <= 1.0

    # Squeezing the silo down to QoServe's budget wrecks it (paper:
    # 60.4% violations at (6,2,2)).
    assert squeezed_silo["gpus"] <= qoserve["gpus"]
    assert (
        squeezed_silo["viol_overall_pct"]
        > max(1.0, 5 * tuned_silo["viol_overall_pct"])
    )

    # The tuned silo meets SLOs — the comparison is about cost, not
    # feasibility.
    assert tuned_silo["viol_overall_pct"] <= 5.0
